//! Minimal HTTP/1.1 framing with persistent-connection support: parse
//! requests off a connection-lifetime buffer (so pipelined bytes carry
//! over between requests) and write correctly framed keep-alive or close
//! responses.
//!
//! Not a general HTTP implementation — the serving API is a fixed set of
//! small JSON routes, so this module supports exactly what those need:
//! request line + headers (case-insensitive `Content-Length` and
//! `Connection`), an optional body, and HTTP/1.0-vs-1.1 keep-alive
//! defaults. Framing is strict where it matters for connection reuse:
//! oversized heads are rejected at exactly [`MAX_HEAD`] bytes (the parser
//! never reads past the limit looking for the terminator), and duplicate
//! `Connection`-relevant `Content-Length` headers that disagree are
//! rejected outright — a desynchronized body length on a reused
//! connection would make every later request on it misparse.

use std::io::{self, Read, Write};

/// Maximum accepted request-head size (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request-body size.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request path (query strings are not split off; routes here
    /// don't use them).
    pub path: String,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the peer asked to end the connection after this exchange:
    /// `Connection: close`, or an HTTP/1.0 request without
    /// `Connection: keep-alive`.
    pub close: bool,
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\": {}}}", crate::json::escape(message)),
        )
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The connection-lifetime receive buffer.
///
/// Bytes read off the socket land here; [`try_parse_request`] consumes
/// complete requests from the front and leaves any trailing (pipelined or
/// partial) bytes for the next call. `scanned` remembers how far the
/// head-terminator search has progressed so a head trickled in N chunks
/// costs one linear scan total, not a rescan per chunk.
#[derive(Debug, Default)]
pub struct ConnBuf {
    buf: Vec<u8>,
    /// Prefix of `buf` already scanned for `\r\n\r\n` without a match.
    scanned: usize,
    /// Cached terminator offset once found (cleared when the request is
    /// drained), so body trickle never rescans the head.
    head_end: Option<usize>,
}

impl ConnBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any unparsed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes (for tests and pipelined-injection harnesses).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// How many bytes the next socket read may pull in. While the head is
    /// still incomplete this is capped so the buffer never grows past
    /// [`MAX_HEAD`] hunting for the terminator (the head is rejected the
    /// moment `MAX_HEAD` unterminated bytes are buffered); once the head
    /// is found, body reads are unconstrained.
    fn read_budget(&self, chunk: usize) -> usize {
        if self.head_end.is_some() {
            chunk
        } else {
            MAX_HEAD.saturating_sub(self.buf.len()).clamp(1, chunk)
        }
    }

    /// Finds the end of the head (`\r\n\r\n`), scanning only bytes not
    /// covered by a previous call. Returns the offset of the terminator.
    fn find_head_end(&mut self) -> Option<usize> {
        if let Some(pos) = self.head_end {
            return Some(pos);
        }
        // Restart up to 3 bytes back: the terminator may straddle the
        // boundary between the previously scanned prefix and new bytes.
        let start = self.scanned.saturating_sub(3);
        if let Some(pos) = self.buf[start..].windows(4).position(|w| w == b"\r\n\r\n") {
            self.head_end = Some(start + pos);
            return Some(start + pos);
        }
        self.scanned = self.buf.len();
        None
    }
}

/// Attempts to parse one complete request from the front of `buf`.
///
/// Returns `Ok(None)` when the buffered bytes are a valid prefix but not
/// yet a whole request (more socket data needed). On success the request's
/// bytes are drained from the buffer; pipelined followers stay put.
pub fn try_parse_request(buf: &mut ConnBuf) -> io::Result<Option<Request>> {
    let Some(head_end) = buf.find_head_end() else {
        if buf.buf.len() >= MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request head exceeds {MAX_HEAD} bytes"),
            ));
        }
        return Ok(None);
    };
    if head_end + 4 > MAX_HEAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("request head exceeds {MAX_HEAD} bytes"),
        ));
    }
    let parsed = parse_head(&buf.buf[..head_end])?;
    if parsed.content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "request body of {} bytes exceeds {MAX_BODY}",
                parsed.content_length
            ),
        ));
    }
    let body_start = head_end + 4;
    let body_end = body_start + parsed.content_length;
    if buf.buf.len() < body_end {
        return Ok(None);
    }
    let body = String::from_utf8(buf.buf[body_start..body_end].to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request body"))?;
    buf.buf.drain(..body_end);
    buf.scanned = 0;
    buf.head_end = None;
    Ok(Some(Request {
        method: parsed.method,
        path: parsed.path,
        body,
        close: parsed.close,
    }))
}

struct ParsedHead {
    method: String,
    path: String,
    content_length: usize,
    close: bool,
}

fn parse_head(head: &[u8]) -> io::Result<ParsedHead> {
    let head_text = std::str::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request head"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing path"))?
        .to_string();
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 (or no version) to close.
    let keep_alive_default = parts.next() == Some("HTTP/1.1");
    let mut content_length: Option<usize> = None;
    let mut close = !keep_alive_default;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
                // Repeated identical values are tolerated (some proxies
                // duplicate the header); disagreeing ones would desync
                // keep-alive framing and are rejected.
                if content_length.is_some_and(|seen| seen != parsed) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "conflicting duplicate Content-Length headers",
                    ));
                }
                content_length = Some(parsed);
            } else if name.eq_ignore_ascii_case("connection") {
                // A comma-separated token list; "close" and "keep-alive"
                // are the tokens that matter here.
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            }
        }
    }
    Ok(ParsedHead {
        method,
        path,
        content_length: content_length.unwrap_or(0),
        close,
    })
}

/// Reads one request from `stream`, carrying partial/pipelined bytes in
/// `buf` across calls on the same connection.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly between
/// requests (a health-check probe that connects and disconnects, or a
/// keep-alive client hanging up) — not an error worth logging.
pub fn read_request_buffered<R: Read>(
    stream: &mut R,
    buf: &mut ConnBuf,
) -> io::Result<Option<Request>> {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(request) = try_parse_request(buf)? {
            return Ok(Some(request));
        }
        let budget = buf.read_budget(chunk.len());
        let n = stream.read(&mut chunk[..budget])?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend(&chunk[..n]);
    }
}

/// Reads one request from a fresh connection (one-shot convenience used
/// by tests; the server threads a [`ConnBuf`] through the connection).
pub fn read_request<R: Read>(stream: &mut R) -> io::Result<Option<Request>> {
    read_request_buffered(stream, &mut ConnBuf::new())
}

/// Writes `response` to `stream` with correct framing. `keep_alive`
/// decides the `Connection` header: the server sends `close` on the final
/// response of a connection so clients never wait on a dead socket.
pub fn write_response<W: Write>(
    stream: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    // Head and body go out in ONE write: a small trailing segment after
    // unacked data would otherwise sit in Nagle's buffer waiting out the
    // peer's delayed ACK (~40ms per keep-alive request).
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    wire.push_str(&response.body);
    stream.write_all(wire.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/classify HTTP/1.1\r\nHost: x\r\ncontent-length: 11\r\n\r\nhello world";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/classify");
        assert_eq!(req.body, "hello world");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(
            read_request(&mut Cursor::new(&close[..]))
                .unwrap()
                .unwrap()
                .close
        );
        let old = b"GET / HTTP/1.0\r\n\r\n";
        assert!(
            read_request(&mut Cursor::new(&old[..]))
                .unwrap()
                .unwrap()
                .close
        );
        let old_ka = b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        assert!(
            !read_request(&mut Cursor::new(&old_ka[..]))
                .unwrap()
                .unwrap()
                .close
        );
    }

    #[test]
    fn empty_connection_is_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut Cursor::new(raw)).unwrap().is_none());
    }

    #[test]
    fn truncated_body_errors() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort";
        assert!(read_request(&mut Cursor::new(&raw[..])).is_err());
    }

    #[test]
    fn pipelined_requests_parse_from_one_buffer() {
        let mut buf = ConnBuf::new();
        buf.extend(
            b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\nGET /c HT",
        );
        let a = try_parse_request(&mut buf).unwrap().unwrap();
        assert_eq!((a.path.as_str(), a.body.as_str()), ("/a", "abc"));
        let b = try_parse_request(&mut buf).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        // The third request is incomplete: parser asks for more data and
        // keeps the partial bytes.
        assert!(try_parse_request(&mut buf).unwrap().is_none());
        buf.extend(b"TP/1.1\r\n\r\n");
        let c = try_parse_request(&mut buf).unwrap().unwrap();
        assert_eq!(c.path, "/c");
        assert!(buf.is_empty());
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd";
        let err = read_request(&mut Cursor::new(&raw[..])).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
        // Repeated identical values stay accepted.
        let ok = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        let req = read_request(&mut Cursor::new(&ok[..])).unwrap().unwrap();
        assert_eq!(req.body, "abc");
    }

    #[test]
    fn head_limit_is_exact() {
        // A head that fits exactly: "GET / HTTP/1.1\r\nX: ...\r\n\r\n"
        // padded to MAX_HEAD bytes total parses fine.
        let fixed = b"GET / HTTP/1.1\r\nX: ";
        let pad = MAX_HEAD - fixed.len() - 4;
        let mut raw = fixed.to_vec();
        raw.extend(std::iter::repeat_n(b'a', pad));
        raw.extend(b"\r\n\r\n");
        assert_eq!(raw.len(), MAX_HEAD);
        assert!(read_request(&mut Cursor::new(&raw[..])).unwrap().is_some());
        // One byte more is rejected — and the parser never buffers past
        // the limit hunting for the terminator.
        let mut raw = fixed.to_vec();
        raw.extend(std::iter::repeat_n(b'a', pad + 1));
        raw.extend(b"\r\n\r\n");
        let mut buf = ConnBuf::new();
        let err = read_request_buffered(&mut Cursor::new(&raw[..]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn trickled_head_parses_incrementally() {
        // Feed a head one byte at a time through the buffered parser; the
        // scanned watermark means this is O(n) total, and the result is
        // identical to a single-shot parse.
        let raw = b"POST /v1/classify HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut buf = ConnBuf::new();
        let mut req = None;
        for &byte in raw.iter() {
            buf.extend(&[byte]);
            if let Some(r) = try_parse_request(&mut buf).unwrap() {
                req = Some(r);
            }
        }
        let req = req.expect("complete request parsed");
        assert_eq!(req.path, "/v1/classify");
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"a\":1}".into()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"a\":1}"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn error_envelope_escapes() {
        let r = Response::error(400, "bad \"x\"");
        assert_eq!(r.body, "{\"error\": \"bad \\\"x\\\"\"}");
    }
}
