//! A minimal JSON value model: parser and writer helpers.
//!
//! The workspace's vendored `serde` shim does not serialize, and the rest
//! of the repo hand-rolls its JSON output; the serving layer additionally
//! needs to *parse* request bodies, so this module carries a small,
//! dependency-free recursive-descent parser plus the string/float writers
//! the responses use.
//!
//! Floats are written with `{:?}` (Rust's shortest-roundtrip formatting)
//! and parsed with `str::parse::<f64>`, so an `f64` survives a JSON round
//! trip **bit-exactly** — the property the serving layer's bit-identity
//! contract with the offline miner rests on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap); duplicate keys keep the
    /// last occurrence, like most JSON decoders.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// A JSON parse failure, with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(arr));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so this
                    // boundary math is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.bytes.len() - self.pos < 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding in a JSON document (adds the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` so that parsing the text back yields the same bits
/// (shortest-roundtrip `{:?}`; non-finite values become `null`, which JSON
/// cannot represent otherwise).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        assert!(parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for v in [0.1, 1.0 / 3.0, 0.6180339887498949, 1e-300, -2.5e17, 0.0] {
            let text = num(v);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let back = parse(&escape(s)).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
