//! # noisemine-serve
//!
//! The online match-serving layer: loads mined pattern sets as versioned,
//! checksummed `NMMODEL` artifacts and classifies incoming event sequences
//! against them in real time over a thin HTTP/JSON API — the hot path to
//! the paper's offline three-phase miner (Yang, Wang, Yu, Han — SIGMOD
//! 2002), mirroring the offline-mine/online-classify split of
//! prebuilt-index serving systems.
//!
//! ## Pieces
//!
//! - [`model_io`] — the `NMMODEL` on-disk artifact format: a byte-stable
//!   model payload ([`noisemine_core::model`]) framed with magic, format
//!   version, and CRC32C checksums shared with the sequence database.
//! - [`registry`] — per-tenant model slots with atomic hot-swap: an
//!   ArcSwap-style `Mutex<Arc<ServeModel>>` epoch pointer; in-flight
//!   requests finish on the model they started with.
//! - [`classify`](mod@classify) — the scoring hot path, **bit-identical**
//!   to offline [`db_match_many`] over the same sequences (same batched
//!   trie kernel, same block-ordered float reduction).
//! - [`admission`] — deterministic per-tenant token buckets; exhausted
//!   quota answers HTTP 429.
//! - [`server`] — the zero-dependency server: a `poll(2)` readiness event
//!   loop (raw libc FFI, no external runtime) multiplexing persistent
//!   HTTP/1.1 keep-alive connections across a worker thread pool, with
//!   `/v1/classify`, `/admin/swap`, `/admin/models`, `/admin/shutdown`,
//!   `/metrics` (Prometheus), `/healthz` (liveness), and `/readyz`
//!   (readiness with per-tenant degradation reasons) routes. Idle
//!   connections park in the event loop (no worker held); drain answers
//!   late requests `503` and closes.
//! - [`json`] — the small JSON parser/writer the API uses (floats render
//!   shortest-roundtrip, so scores survive HTTP bit-exactly).
//! - [`catalog`] — the crash-safe model catalog: a watched directory of
//!   `NMMODEL` artifacts (`<tenant>/<version>.nmmodel`) whose supervisor
//!   validates every artifact end-to-end before adoption and hot-swaps
//!   the newest valid version in. Torn, truncated, corrupt, or mislabeled
//!   files are ignored; the last-good model keeps serving.
//! - [`drift`] — the in-server drift loop: classified traffic feeds a
//!   per-tenant [`noisemine_stream::StreamState`]; when the Chernoff
//!   detector fires, a supervised (panic-isolated, time-bounded,
//!   circuit-broken) background re-mine produces a new model, persists it
//!   through the catalog, and self-swaps — mine → serve → drift closes
//!   with no operator.
//!
//! See `docs/SERVING.md` for the API reference and operational notes.
//!
//! [`db_match_many`]: noisemine_core::matching::db_match_many

pub mod admission;
pub mod catalog;
pub mod classify;
pub mod drift;
pub mod http;
pub mod json;
pub mod model_io;
pub(crate) mod obs;
pub(crate) mod poll;
pub mod registry;
pub mod server;

pub use admission::TokenBucket;
pub use catalog::{Catalog, CatalogSupervisor, SyncReport, TenantScan};
pub use classify::{classify, Classification};
pub use drift::{DriftConfig, DriftController, DriftFault, DriftSupervisor};
pub use model_io::{decode_model_file, model_bytes, read_model, write_model, ModelIoError};
pub use registry::{
    Admission, Adoption, ModelRegistry, ServeModel, ServingState, TenantInfo, TenantLookup,
};
pub use server::{ServeConfig, Server};
