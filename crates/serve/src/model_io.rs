//! `NMMODEL` — the checksummed on-disk format for pattern-model artifacts.
//!
//! Layout (all integers little-endian), mirroring the NMSEQDB v2 idiom of
//! a magic-framed header plus CRC32C integrity at two granularities:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "NMMODEL\0"
//! 8       4     format version (u32, currently 1)
//! 12      8     payload length L (u64)
//! 20      L     model payload (see noisemine_core::model)
//! 20+L    4     payload CRC32C
//! 24+L    4     file CRC32C (over bytes 0 .. 24+L)
//! ```
//!
//! The payload CRC detects corruption of the model data itself; the file
//! CRC additionally covers the header, so a bit flip *anywhere* in the
//! artifact is rejected with a descriptive error. Checksums use the same
//! CRC32C implementation as the sequence database ([`noisemine_seqdb::crc`]).
//!
//! Writing is deterministic: the same model always produces the same file
//! bytes (the payload encoding is byte-stable), so artifacts can be
//! content-addressed or diffed by checksum.

use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;

use noisemine_core::PatternModel;
use noisemine_seqdb::crc::crc32c;

/// The 8-byte magic that opens every NMMODEL file.
pub const NMMODEL_MAGIC: &[u8; 8] = b"NMMODEL\0";
/// Current format version.
pub const NMMODEL_VERSION: u32 = 1;
/// Fixed header length (magic + version + payload length).
pub const HEADER_LEN: usize = 20;
/// Bytes of framing after the payload (payload CRC + file CRC).
pub const TRAILER_LEN: usize = 8;

/// Errors reading or writing an NMMODEL artifact.
#[derive(Debug)]
pub enum ModelIoError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid NMMODEL artifact; the message says exactly
    /// what was malformed (bad magic, checksum mismatch, truncation, or a
    /// payload decode failure).
    Format(String),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model artifact i/o error: {e}"),
            ModelIoError::Format(msg) => write!(f, "invalid NMMODEL artifact: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Result alias for artifact I/O.
pub type ModelIoResult<T> = Result<T, ModelIoError>;

/// Serializes a model to its complete NMMODEL file bytes (deterministic).
pub fn model_bytes(model: &PatternModel) -> Vec<u8> {
    let payload = model.encode();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(NMMODEL_MAGIC);
    out.extend_from_slice(&NMMODEL_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32c(&payload).to_le_bytes());
    let file_crc = crc32c(&out);
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

/// Writes a model artifact atomically (`path.tmp` then rename).
pub fn write_model(path: impl AsRef<Path>, model: &PatternModel) -> ModelIoResult<()> {
    let path = path.as_ref();
    let bytes = model_bytes(model);
    let tmp = path.with_extension("nmmodel.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Decodes a model from complete NMMODEL file bytes, verifying both
/// checksums before touching the payload.
pub fn decode_model_file(bytes: &[u8]) -> ModelIoResult<PatternModel> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(ModelIoError::Format(format!(
            "file is {} bytes, shorter than the {}-byte minimum (header + checksums); \
             truncated write?",
            bytes.len(),
            HEADER_LEN + TRAILER_LEN
        )));
    }
    if &bytes[..8] != NMMODEL_MAGIC {
        return Err(ModelIoError::Format(format!(
            "bad magic {:02x?} (expected {:02x?} — not an NMMODEL file, or the header is corrupt)",
            &bytes[..8],
            NMMODEL_MAGIC
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != NMMODEL_VERSION {
        return Err(ModelIoError::Format(format!(
            "format version {version} (this build reads version {NMMODEL_VERSION})"
        )));
    }
    // Whole-file CRC first: it covers the header, so a flipped length or
    // version byte is caught before it can misdirect the payload parse.
    let file_crc_at = bytes.len() - 4;
    let stored_file_crc = u32::from_le_bytes(bytes[file_crc_at..].try_into().expect("4 bytes"));
    let actual_file_crc = crc32c(&bytes[..file_crc_at]);
    if stored_file_crc != actual_file_crc {
        return Err(ModelIoError::Format(format!(
            "file checksum mismatch: stored {stored_file_crc:#010x}, computed \
             {actual_file_crc:#010x} — the artifact is corrupt"
        )));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let expected_total = HEADER_LEN + payload_len + TRAILER_LEN;
    if bytes.len() != expected_total {
        return Err(ModelIoError::Format(format!(
            "header promises a {payload_len}-byte payload ({expected_total} bytes total) but the \
             file is {} bytes",
            bytes.len()
        )));
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
    let stored_payload_crc = u32::from_le_bytes(
        bytes[HEADER_LEN + payload_len..HEADER_LEN + payload_len + 4]
            .try_into()
            .expect("4 bytes"),
    );
    let actual_payload_crc = crc32c(payload);
    if stored_payload_crc != actual_payload_crc {
        return Err(ModelIoError::Format(format!(
            "payload checksum mismatch: stored {stored_payload_crc:#010x}, computed \
             {actual_payload_crc:#010x} — the model data is corrupt"
        )));
    }
    PatternModel::decode(payload)
        .map_err(|e| ModelIoError::Format(format!("payload decode failed: {e}")))
}

/// Reads and verifies a model artifact from disk.
pub fn read_model(path: impl AsRef<Path>) -> ModelIoResult<PatternModel> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    decode_model_file(&bytes).map_err(|e| match e {
        ModelIoError::Format(msg) => ModelIoError::Format(format!("{}: {msg}", path.display())),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::lattice::Border;
    use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
    use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, Symbol};

    fn sample_model() -> PatternModel {
        let alphabet = Alphabet::synthetic(5);
        let matrix = CompatibilityMatrix::uniform_noise(5, 0.1).unwrap();
        let outcome = MineOutcome {
            frequent: vec![FrequentPattern {
                pattern: Pattern::contiguous(&[Symbol(0), Symbol(2), Symbol(4)]).unwrap(),
                match_estimate: 0.5,
                provenance: Provenance::Verified,
            }],
            border: Border::default(),
            symbol_match: vec![0.4; 5],
            stats: MineStats::default(),
        };
        PatternModel::from_outcome(&outcome, &alphabet, &matrix, 0.25, 7)
    }

    #[test]
    fn file_bytes_are_deterministic() {
        let model = sample_model();
        assert_eq!(model_bytes(&model), model_bytes(&model));
    }

    #[test]
    fn file_round_trips() {
        let model = sample_model();
        let bytes = model_bytes(&model);
        let back = decode_model_file(&bytes).unwrap();
        assert_eq!(model_bytes(&back), bytes);
        assert_eq!(back.version, 7);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let model = sample_model();
        let clean = model_bytes(&model);
        for bit in 0..clean.len() * 8 {
            let mut corrupt = clean.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_model_file(&corrupt).is_err(),
                "bit {bit} flip went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_descriptive() {
        let model = sample_model();
        let bytes = model_bytes(&model);
        let err = decode_model_file(&bytes[..10]).unwrap_err();
        assert!(err.to_string().contains("truncated write"), "{err}");
        let err = decode_model_file(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn wrong_magic_is_descriptive() {
        let err = decode_model_file(b"NOTAMODELFILE_AT_ALL_____PADDING").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }
}
