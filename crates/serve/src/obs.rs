//! Metric handles for the serving layer: request volume, latency, throttle
//! and swap counts, plus per-tenant families.
//!
//! Global handles follow the workspace idiom (lazily registered in the
//! process-wide [`noisemine_obs::global`] registry, cached in `OnceLock`s,
//! recording gated on [`noisemine_obs::enabled`]). The registry is
//! flat-name only (no labels), so per-tenant metrics encode the tenant in
//! the metric name — `serve_tenant_<tenant>_requests_total` — with the
//! tenant sanitized to `[a-z0-9_]` by [`sanitize_tenant`]. Every metric is
//! documented in `docs/OBSERVABILITY.md`.

use noisemine_obs::{self as obs, Counter, Gauge, Histogram};
use std::sync::OnceLock;

macro_rules! counter {
    ($fn_name:ident, $name:literal, $help:literal, $unit:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static H: OnceLock<Counter> = OnceLock::new();
            H.get_or_init(|| obs::counter($name, $help, $unit))
        }
    };
}

counter!(
    requests,
    "serve_requests_total",
    "HTTP requests parsed and routed by the serving layer (all routes)",
    "requests"
);
counter!(
    connections,
    "serve_connections_total",
    "TCP connections accepted by the serving layer",
    "connections"
);
counter!(
    keepalive_reuses,
    "serve_keepalive_reuses_total",
    "Requests served on an already-used keep-alive connection (second and later per connection)",
    "requests"
);
counter!(
    pipelined_requests,
    "serve_pipelined_requests_total",
    "Requests parsed from bytes already buffered behind an earlier request on the same connection",
    "requests"
);
counter!(
    idle_evictions,
    "serve_idle_evictions_total",
    "Keep-alive connections closed by the idle timeout",
    "connections"
);
counter!(
    poll_wakeups,
    "serve_poll_wakeups_total",
    "Readiness event-loop iterations (poll(2) returns)",
    "wakeups"
);
counter!(
    drain_rejects,
    "serve_drain_rejects_total",
    "Requests answered 503 because they arrived during graceful drain",
    "requests"
);
counter!(
    classifications,
    "serve_classifications_total",
    "Classification requests that produced a scored response",
    "requests"
);
counter!(
    sequences_classified,
    "serve_sequences_classified_total",
    "Event sequences scored across all classification requests",
    "sequences"
);
counter!(
    throttled,
    "serve_throttled_total",
    "Requests rejected with 429 by token-bucket admission control",
    "requests"
);
counter!(
    client_errors,
    "serve_client_errors_total",
    "Requests rejected with a 4xx other than 429 (bad JSON, unknown route/tenant)",
    "requests"
);
counter!(
    swaps,
    "serve_model_swaps_total",
    "Successful hot-swaps of a tenant's active model",
    "swaps"
);

/// Connections currently open (accepted and not yet closed).
pub(crate) fn open_connections() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| {
        obs::gauge(
            "serve_open_connections",
            "Connections currently open (accepted and not yet closed)",
            "connections",
        )
    })
}

/// Connections parked in the readiness loop awaiting their next request.
pub(crate) fn idle_connections() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| {
        obs::gauge(
            "serve_idle_connections",
            "Keep-alive connections parked in the readiness loop awaiting their next request",
            "connections",
        )
    })
}

/// Classification latency (request parse to response write).
pub(crate) fn classify_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        obs::histogram(
            "serve_classify_seconds",
            "Wall-clock time to score one classification request against the active model",
            "seconds",
            obs::duration_buckets(),
        )
    })
}

/// Maps a tenant name onto the metric-name-safe alphabet `[a-z0-9_]`
/// (uppercase folded, everything else becomes `_`).
pub fn sanitize_tenant(tenant: &str) -> String {
    tenant
        .chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// Per-tenant metric handles, registered when the tenant's first model is
/// installed (bounded cardinality: only configured tenants get a family).
#[derive(Debug, Clone)]
pub(crate) struct TenantMetrics {
    /// Classification requests admitted for this tenant.
    pub requests: Counter,
    /// Requests rejected with 429 for this tenant.
    pub throttled: Counter,
    /// Sequences scored for this tenant.
    pub sequences: Counter,
    /// The tenant's active model version.
    pub model_version: Gauge,
}

impl TenantMetrics {
    pub(crate) fn register(tenant: &str) -> Self {
        let t = sanitize_tenant(tenant);
        Self {
            requests: obs::counter(
                &format!("serve_tenant_{t}_requests_total"),
                "Classification requests admitted for this tenant",
                "requests",
            ),
            throttled: obs::counter(
                &format!("serve_tenant_{t}_throttled_total"),
                "Requests rejected with 429 for this tenant",
                "requests",
            ),
            sequences: obs::counter(
                &format!("serve_tenant_{t}_sequences_total"),
                "Event sequences scored for this tenant",
                "sequences",
            ),
            model_version: obs::gauge(
                &format!("serve_tenant_{t}_model_version"),
                "The tenant's active model version",
                "version",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_tenant_names() {
        assert_eq!(sanitize_tenant("Acme-Corp.EU"), "acme_corp_eu");
        assert_eq!(sanitize_tenant("default"), "default");
        assert_eq!(sanitize_tenant("日本"), "__");
    }
}
