//! Metric handles for the serving layer: request volume, latency, throttle
//! and swap counts, plus per-tenant families.
//!
//! Global handles follow the workspace idiom (lazily registered in the
//! process-wide [`noisemine_obs::global`] registry, cached in `OnceLock`s,
//! recording gated on [`noisemine_obs::enabled`]). The registry is
//! flat-name only (no labels), so per-tenant metrics encode the tenant in
//! the metric name — `serve_tenant_<tenant>_requests_total` — with the
//! tenant sanitized to `[a-z0-9_]` by [`sanitize_tenant`]. Every metric is
//! documented in `docs/OBSERVABILITY.md`.

use noisemine_obs::{self as obs, Counter, Gauge, Histogram};
use std::sync::OnceLock;

macro_rules! counter {
    ($fn_name:ident, $name:literal, $help:literal, $unit:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static H: OnceLock<Counter> = OnceLock::new();
            H.get_or_init(|| obs::counter($name, $help, $unit))
        }
    };
}

counter!(
    requests,
    "serve_requests_total",
    "HTTP requests parsed and routed by the serving layer (all routes)",
    "requests"
);
counter!(
    connections,
    "serve_connections_total",
    "TCP connections accepted by the serving layer",
    "connections"
);
counter!(
    keepalive_reuses,
    "serve_keepalive_reuses_total",
    "Requests served on an already-used keep-alive connection (second and later per connection)",
    "requests"
);
counter!(
    pipelined_requests,
    "serve_pipelined_requests_total",
    "Requests parsed from bytes already buffered behind an earlier request on the same connection",
    "requests"
);
counter!(
    idle_evictions,
    "serve_idle_evictions_total",
    "Keep-alive connections closed by the idle timeout",
    "connections"
);
counter!(
    poll_wakeups,
    "serve_poll_wakeups_total",
    "Readiness event-loop iterations (poll(2) returns)",
    "wakeups"
);
counter!(
    drain_rejects,
    "serve_drain_rejects_total",
    "Requests answered 503 because they arrived during graceful drain",
    "requests"
);
counter!(
    classifications,
    "serve_classifications_total",
    "Classification requests that produced a scored response",
    "requests"
);
counter!(
    sequences_classified,
    "serve_sequences_classified_total",
    "Event sequences scored across all classification requests",
    "sequences"
);
counter!(
    throttled,
    "serve_throttled_total",
    "Requests rejected with 429 by token-bucket admission control",
    "requests"
);
counter!(
    client_errors,
    "serve_client_errors_total",
    "Requests rejected with a 4xx other than 429 (bad JSON, unknown route/tenant)",
    "requests"
);
counter!(
    swaps,
    "serve_model_swaps_total",
    "Successful hot-swaps of a tenant's active model",
    "swaps"
);
counter!(
    catalog_scans,
    "serve_catalog_scans_total",
    "Catalog directory scans performed by the supervisor (startup sync plus every watch interval)",
    "scans"
);
counter!(
    catalog_adoptions,
    "serve_catalog_adoptions_total",
    "Models adopted from the catalog into the live registry (newest valid version per tenant)",
    "models"
);
counter!(
    catalog_rejects,
    "serve_catalog_rejects_total",
    "Catalog artifacts rejected by validation (torn, truncated, corrupt, or mislabeled files)",
    "files"
);
counter!(
    drift_samples,
    "serve_drift_samples_total",
    "Classified sequences forwarded into the drift loop",
    "sequences"
);
counter!(
    drift_samples_dropped,
    "serve_drift_samples_dropped_total",
    "Classified sequences dropped by the drift loop (full channel, full buffer, or unknown tenant)",
    "sequences"
);
counter!(
    remine_attempts,
    "serve_remine_attempts_total",
    "Supervised in-server re-mine attempts started by the drift loop",
    "attempts"
);
counter!(
    remines_completed,
    "serve_remines_completed_total",
    "Supervised re-mines that completed, validated, and self-swapped a new model",
    "remines"
);
counter!(
    remine_failures,
    "serve_remine_failures_total",
    "Supervised re-mine attempts that failed (panic, timeout, mine error, or invalid artifact)",
    "attempts"
);
counter!(
    remine_panics,
    "serve_remine_panics_total",
    "Supervised re-mine attempts that panicked (isolated; the server keeps serving)",
    "attempts"
);
counter!(
    remine_timeouts,
    "serve_remine_timeouts_total",
    "Supervised re-mine attempts abandoned at the re-mine deadline",
    "attempts"
);
counter!(
    breaker_opens,
    "serve_breaker_opens_total",
    "Circuit-breaker open transitions (failure budget exhausted or half-open trial failed)",
    "transitions"
);
counter!(
    self_swaps,
    "serve_self_swaps_total",
    "Model swaps initiated by the drift loop itself (no operator involved)",
    "swaps"
);

/// Connections currently open (accepted and not yet closed).
pub(crate) fn open_connections() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| {
        obs::gauge(
            "serve_open_connections",
            "Connections currently open (accepted and not yet closed)",
            "connections",
        )
    })
}

/// Connections parked in the readiness loop awaiting their next request.
pub(crate) fn idle_connections() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| {
        obs::gauge(
            "serve_idle_connections",
            "Keep-alive connections parked in the readiness loop awaiting their next request",
            "connections",
        )
    })
}

/// Sequences currently buffered across all tenants for the next re-mine.
pub(crate) fn drift_buffered() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| {
        obs::gauge(
            "serve_drift_buffered_sequences",
            "Sequences currently buffered across all tenants for the next re-mine",
            "sequences",
        )
    })
}

/// Per-tenant circuit-breaker state gauge
/// (`0` = closed, `1` = half-open, `2` = open).
pub(crate) fn set_breaker(tenant: &str, value: f64) {
    let t = sanitize_tenant(tenant);
    obs::gauge(
        &format!("serve_tenant_{t}_breaker_state"),
        "Re-mine circuit-breaker state for this tenant (0=closed, 1=half_open, 2=open)",
        "state",
    )
    .set(value);
}

/// Supervised re-mine latency (prepare to adopted model).
pub(crate) fn remine_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        obs::histogram(
            "serve_remine_seconds",
            "Wall-clock time of a successful supervised re-mine, prepare through adoption",
            "seconds",
            obs::duration_buckets(),
        )
    })
}

/// Classification latency (request parse to response write).
pub(crate) fn classify_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        obs::histogram(
            "serve_classify_seconds",
            "Wall-clock time to score one classification request against the active model",
            "seconds",
            obs::duration_buckets(),
        )
    })
}

/// Maps a tenant name onto the metric-name-safe alphabet `[a-z0-9_]`
/// (uppercase folded, everything else becomes `_`).
pub fn sanitize_tenant(tenant: &str) -> String {
    tenant
        .chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// Per-tenant metric handles, registered when the tenant's first model is
/// installed (bounded cardinality: only configured tenants get a family).
#[derive(Debug, Clone)]
pub(crate) struct TenantMetrics {
    /// Classification requests admitted for this tenant.
    pub requests: Counter,
    /// Requests rejected with 429 for this tenant.
    pub throttled: Counter,
    /// Sequences scored for this tenant.
    pub sequences: Counter,
    /// The tenant's active model version.
    pub model_version: Gauge,
    /// The tenant's serving state
    /// (`0` = current, `1` = stale, `2` = remining, `3` = circuit_open).
    pub serving_state: Gauge,
}

impl TenantMetrics {
    pub(crate) fn register(tenant: &str) -> Self {
        let t = sanitize_tenant(tenant);
        Self {
            requests: obs::counter(
                &format!("serve_tenant_{t}_requests_total"),
                "Classification requests admitted for this tenant",
                "requests",
            ),
            throttled: obs::counter(
                &format!("serve_tenant_{t}_throttled_total"),
                "Requests rejected with 429 for this tenant",
                "requests",
            ),
            sequences: obs::counter(
                &format!("serve_tenant_{t}_sequences_total"),
                "Event sequences scored for this tenant",
                "sequences",
            ),
            model_version: obs::gauge(
                &format!("serve_tenant_{t}_model_version"),
                "The tenant's active model version",
                "version",
            ),
            serving_state: obs::gauge(
                &format!("serve_tenant_{t}_serving_state"),
                "The tenant's serving state (0=current, 1=stale, 2=remining, 3=circuit_open)",
                "state",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_tenant_names() {
        assert_eq!(sanitize_tenant("Acme-Corp.EU"), "acme_corp_eu");
        assert_eq!(sanitize_tenant("default"), "default");
        assert_eq!(sanitize_tenant("日本"), "__");
    }
}
