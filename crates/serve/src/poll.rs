//! A tiny FFI shim over `poll(2)` plus a self-pipe wakeup — the readiness
//! primitive behind the server's event loop, declared directly against
//! libc symbols so the workspace stays free of external crates.
//!
//! Unix-only by construction (the rest of the workspace already assumes a
//! Unix CI/runtime). Two pieces:
//!
//! - [`poll_fds`] — a safe wrapper over `poll(2)` that retries `EINTR`.
//! - [`WakePipe`] — the classic self-pipe trick: the event loop includes
//!   the pipe's read end in its poll set; any thread (a worker returning
//!   a keep-alive connection, [`crate::server::Server::stop`]) writes one
//!   byte to interrupt the poll immediately instead of waiting out the
//!   timeout.

use std::io;
use std::os::unix::io::RawFd;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    /// A descriptor watched for readability.
    pub fn readable(fd: RawFd) -> Self {
        Self {
            fd,
            events: POLLIN,
            revents: 0,
        }
    }

    /// Whether the descriptor is ready for the event loop: readable, hung
    /// up, or in error (the latter two must also be dispatched so the
    /// connection gets torn down instead of polled forever).
    pub fn is_ready(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

pub const POLLIN: i16 = 0x001;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;
pub const POLLNVAL: i16 = 0x020;

const EINTR: i32 = 4;

const IPPROTO_TCP: i32 = 6;
const TCP_NODELAY: i32 = 1;

extern "C" {
    // nfds_t is unsigned long on every Unix libc this builds against.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe(fds: *mut RawFd) -> i32;
    fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
    fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
    fn close(fd: RawFd) -> i32;
    fn setsockopt(fd: RawFd, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
}

/// Disables Nagle's algorithm on a connected TCP socket. Keep-alive
/// responses otherwise risk a small trailing segment stalling behind the
/// peer's delayed ACK (~40ms of added latency per request).
pub fn set_tcp_nodelay(fd: RawFd) -> io::Result<()> {
    let on: i32 = 1;
    let rc = unsafe {
        setsockopt(
            fd,
            IPPROTO_TCP,
            TCP_NODELAY,
            &on,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Polls `fds` for readiness, blocking up to `timeout_ms` (`-1` = forever,
/// `0` = non-blocking check). Returns the number of ready descriptors;
/// `EINTR` is retried transparently.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

/// The self-pipe: `wake()` from any thread makes the event loop's next (or
/// current) poll return immediately; the loop calls `drain()` once awake.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

// RawFds are plain ints; wake() and drain() are independently thread-safe
// (single-byte pipe writes are atomic).
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    pub fn new() -> io::Result<Self> {
        let mut fds: [RawFd; 2] = [-1, -1];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The descriptor the event loop adds to its poll set.
    pub fn poll_fd(&self) -> PollFd {
        PollFd::readable(self.read_fd)
    }

    /// Interrupts a concurrent poll. Best-effort: a full pipe means
    /// wakeups are already pending, which serves the same purpose.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.write_fd, &byte, 1) };
    }

    /// Consumes every pending wakeup byte without blocking (readability is
    /// re-checked with a zero-timeout poll before each read, so no
    /// non-blocking fd mode is needed).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let mut fds = [self.poll_fd()];
            match poll_fds(&mut fds, 0) {
                Ok(n) if n > 0 && fds[0].is_ready() => {
                    if unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) } <= 0 {
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn wake_interrupts_poll() {
        let pipe = WakePipe::new().unwrap();
        pipe.wake();
        let mut fds = [pipe.poll_fd()];
        let t0 = Instant::now();
        let n = poll_fds(&mut fds, 5_000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].is_ready());
        assert!(t0.elapsed() < Duration::from_secs(1), "poll returned early");
        pipe.drain();
        // Drained: a zero-timeout poll reports nothing ready.
        let mut fds = [pipe.poll_fd()];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn poll_times_out_on_silence() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [pipe.poll_fd()];
        let t0 = Instant::now();
        assert_eq!(poll_fds(&mut fds, 20).unwrap(), 0);
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn many_wakes_drain_fully() {
        let pipe = WakePipe::new().unwrap();
        for _ in 0..200 {
            pipe.wake();
        }
        pipe.drain();
        let mut fds = [pipe.poll_fd()];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }
}
