//! The per-tenant model registry: compiled models, atomic hot-swap,
//! serving-state tracking, and admission state.
//!
//! Each tenant owns a slot whose active model is an ArcSwap-style epoch
//! pointer — a `Mutex<Option<Arc<ServeModel>>>`. A request clones the
//! `Arc` under a brief lock and then classifies entirely on its private
//! handle, so a concurrent [`ModelRegistry::swap`] never interrupts
//! in-flight work: requests started before the swap finish on the old
//! model, requests started after see the new one, and the old model is
//! freed when its last in-flight reference drops.
//!
//! A slot can also exist **without** a model: the catalog supervisor
//! declares a tenant as soon as its directory appears, even when no valid
//! artifact has been adopted yet, so `/readyz` can report the tenant as
//! degraded instead of silently 404-ing. Each slot additionally carries a
//! [`ServingState`] (`current` / `stale` / `remining` / `circuit_open`)
//! maintained by the in-server drift loop and surfaced on `/admin/models`,
//! `/readyz`, and the per-tenant metrics.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use noisemine_core::{CandidateTrie, Pattern, PatternModel};

use crate::admission::TokenBucket;
use crate::obs::TenantMetrics;

/// A pattern model compiled for serving: the frozen spec plus the shared
/// [`CandidateTrie`] the hot path batches against.
#[derive(Debug)]
pub struct ServeModel {
    /// The model as loaded from the artifact.
    pub spec: PatternModel,
    /// Patterns in model order (the order of every score vector).
    pub patterns: Vec<Pattern>,
    /// The compiled batch-match kernel (`None` for an empty pattern set).
    pub trie: Option<CandidateTrie>,
    /// Per-pattern response fragments (`"pattern": …, "match_estimate": …`),
    /// rendered and JSON-escaped once at compile time — the classify route
    /// serves them on every request without re-rendering.
    pub pattern_json: Vec<String>,
}

impl ServeModel {
    /// Compiles a model for serving. The trie and the per-pattern JSON
    /// fragments are built once here and shared by every request until the
    /// model is swapped out.
    pub fn compile(spec: PatternModel) -> Self {
        let patterns = spec.plain_patterns();
        let trie = if patterns.is_empty() {
            None
        } else {
            Some(CandidateTrie::new(&patterns))
        };
        let pattern_json = spec
            .patterns
            .iter()
            .map(|mp| {
                let display = mp
                    .pattern
                    .display(&spec.alphabet)
                    .unwrap_or_else(|_| "<unrenderable>".to_string());
                format!(
                    "\"pattern\": {}, \"match_estimate\": {}",
                    crate::json::escape(&display),
                    crate::json::num(mp.match_estimate),
                )
            })
            .collect();
        Self {
            spec,
            patterns,
            trie,
            pattern_json,
        }
    }

    /// The model's version.
    pub fn version(&self) -> u64 {
        self.spec.version
    }

    /// Number of patterns the model scores.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request may proceed.
    Granted,
    /// The tenant's token bucket is empty — answer 429.
    Throttled,
    /// No model is installed for the tenant — answer 404.
    UnknownTenant,
}

/// Result of a tenant lookup on the classify path.
#[derive(Debug)]
pub enum TenantLookup {
    /// The tenant has never been declared or installed — answer 404.
    Unknown,
    /// The tenant is declared (e.g. its catalog directory exists) but no
    /// valid model has ever been adopted — answer 503, the tenant is
    /// degraded, not absent.
    NoModel,
    /// The tenant's active model.
    Model(Arc<ServeModel>),
}

/// A tenant's serving state, maintained by the drift loop (documented in
/// `docs/SERVING.md`'s lifecycle section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingState {
    /// The active model reflects the observed traffic distribution.
    Current,
    /// The drift detector has fired: the model still serves, but a re-mine
    /// is pending (or failing and awaiting its next backoff slot).
    Stale,
    /// A supervised re-mine is running right now.
    Remining,
    /// Repeated re-mine failures opened the circuit breaker; the last-good
    /// model keeps serving and re-mines are suspended until the breaker
    /// half-opens.
    CircuitOpen,
}

impl ServingState {
    /// The state's wire name (JSON fields, docs, and metric values).
    pub fn name(self) -> &'static str {
        match self {
            ServingState::Current => "current",
            ServingState::Stale => "stale",
            ServingState::Remining => "remining",
            ServingState::CircuitOpen => "circuit_open",
        }
    }

    /// Numeric encoding for the per-tenant state gauge
    /// (`0=current 1=stale 2=remining 3=circuit_open`).
    pub fn as_gauge(self) -> f64 {
        match self {
            ServingState::Current => 0.0,
            ServingState::Stale => 1.0,
            ServingState::Remining => 2.0,
            ServingState::CircuitOpen => 3.0,
        }
    }
}

/// One row of [`ModelRegistry::tenants`]: a tenant's externally visible
/// serving status.
#[derive(Debug, Clone)]
pub struct TenantInfo {
    /// The tenant name.
    pub tenant: String,
    /// Active model version (`None` when declared but modelless).
    pub version: Option<u64>,
    /// Patterns the active model scores (0 when modelless).
    pub patterns: usize,
    /// The drift-loop serving state.
    pub state: ServingState,
    /// Human-readable reason for a non-`current` state (empty otherwise).
    pub reason: String,
}

/// Outcome of a version-gated adoption attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adoption {
    /// The model was installed; `old` is the previously active version.
    Adopted {
        /// The version replaced (`None` when the tenant had no model).
        old: Option<u64>,
    },
    /// The offered version is not strictly newer than the active one —
    /// nothing changed (the never-downgrade guarantee).
    NotNewer {
        /// The version that stays active.
        current: u64,
    },
}

/// One tenant's serving state.
struct TenantSlot {
    /// The epoch pointer: swap replaces the `Arc`, readers clone it.
    /// `None` = declared but no valid model adopted yet.
    model: Mutex<Option<Arc<ServeModel>>>,
    bucket: Mutex<TokenBucket>,
    metrics: TenantMetrics,
    /// Drift-loop serving state + reason, for `/admin/models` and
    /// `/readyz`.
    status: Mutex<(ServingState, String)>,
}

impl TenantSlot {
    fn new(quota: f64, tenant: &str) -> Self {
        Self {
            model: Mutex::new(None),
            bucket: Mutex::new(TokenBucket::per_second(quota)),
            metrics: TenantMetrics::register(tenant),
            status: Mutex::new((ServingState::Current, String::new())),
        }
    }
}

/// The multi-tenant model registry.
pub struct ModelRegistry {
    tenants: Mutex<HashMap<String, Arc<TenantSlot>>>,
    /// Per-tenant quota in requests/second (`<= 0` = unlimited), applied
    /// to tenants as they are installed.
    quota: f64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("tenants", &self.tenants())
            .field("quota", &self.quota)
            .finish()
    }
}

impl ModelRegistry {
    /// An empty registry with a per-tenant quota (requests/second;
    /// non-positive = unlimited).
    pub fn new(quota: f64) -> Self {
        Self {
            tenants: Mutex::new(HashMap::new()),
            quota,
        }
    }

    /// The tenant's slot, creating it (modelless) if absent.
    fn slot(&self, tenant: &str) -> Arc<TenantSlot> {
        let mut map = self.tenants.lock().expect("registry poisoned");
        if let Some(slot) = map.get(tenant) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(TenantSlot::new(self.quota, tenant));
        map.insert(tenant.to_string(), Arc::clone(&slot));
        slot
    }

    /// The tenant's slot if it exists.
    fn existing_slot(&self, tenant: &str) -> Option<Arc<TenantSlot>> {
        let map = self.tenants.lock().expect("registry poisoned");
        map.get(tenant).cloned()
    }

    /// Declares a tenant without installing a model (idempotent). Used by
    /// the catalog supervisor so a tenant whose directory holds no valid
    /// artifact still shows up — degraded — on `/readyz` instead of
    /// 404-ing.
    pub fn declare(&self, tenant: &str) {
        let slot = self.slot(tenant);
        let has_model = slot.model.lock().expect("model slot poisoned").is_some();
        if !has_model {
            let mut status = slot.status.lock().expect("status poisoned");
            if status.1.is_empty() {
                *status = (
                    ServingState::Stale,
                    "no valid model adopted yet".to_string(),
                );
            }
        }
    }

    /// Installs (or hot-swaps) `model` as the tenant's active model,
    /// unconditionally — the explicit-operator path (`/admin/swap`,
    /// `--model` at startup), which may intentionally roll *back*.
    ///
    /// Returns the previous version when the tenant already had a model.
    /// The swap is atomic: concurrent classifications that already cloned
    /// the old `Arc` finish undisturbed.
    pub fn swap(&self, tenant: &str, model: ServeModel) -> Option<u64> {
        let new_version = model.version();
        let model = Arc::new(model);
        let slot = self.slot(tenant);
        let old = {
            let mut active = slot.model.lock().expect("model slot poisoned");
            active.replace(model)
        };
        slot.metrics.model_version.set(new_version as f64);
        {
            let mut status = slot.status.lock().expect("status poisoned");
            *status = (ServingState::Current, String::new());
        }
        old.map(|m| m.version())
    }

    /// Installs `model` only if it is strictly newer than the tenant's
    /// active model — the automatic-adoption path (catalog supervisor,
    /// drift-loop self-swap). A stale or replayed artifact can therefore
    /// never roll a tenant back.
    pub fn adopt_if_newer(&self, tenant: &str, model: ServeModel) -> Adoption {
        let new_version = model.version();
        let slot = self.slot(tenant);
        let mut active = slot.model.lock().expect("model slot poisoned");
        if let Some(current) = active.as_ref() {
            if current.version() >= new_version {
                return Adoption::NotNewer {
                    current: current.version(),
                };
            }
        }
        let old = active.replace(Arc::new(model));
        drop(active);
        slot.metrics.model_version.set(new_version as f64);
        {
            let mut status = slot.status.lock().expect("status poisoned");
            *status = (ServingState::Current, String::new());
        }
        Adoption::Adopted {
            old: old.map(|m| m.version()),
        }
    }

    /// The tenant's active model (cloned `Arc`; survives any later swap).
    pub fn model(&self, tenant: &str) -> Option<Arc<ServeModel>> {
        match self.lookup(tenant) {
            TenantLookup::Model(m) => Some(m),
            _ => None,
        }
    }

    /// Three-way tenant lookup for the classify path: unknown (404),
    /// declared-but-modelless (503, degraded), or the active model.
    pub fn lookup(&self, tenant: &str) -> TenantLookup {
        let Some(slot) = self.existing_slot(tenant) else {
            return TenantLookup::Unknown;
        };
        let model = slot.model.lock().expect("model slot poisoned").clone();
        match model {
            Some(m) => TenantLookup::Model(m),
            None => TenantLookup::NoModel,
        }
    }

    /// The tenant's active model version, if any.
    pub fn current_version(&self, tenant: &str) -> Option<u64> {
        let slot = self.existing_slot(tenant)?;
        let model = slot.model.lock().expect("model slot poisoned").clone();
        model.map(|m| m.version())
    }

    /// Sets the tenant's drift-loop serving state (and its per-tenant
    /// state gauge). No-op for unknown tenants.
    pub fn set_state(&self, tenant: &str, state: ServingState, reason: &str) {
        if let Some(slot) = self.existing_slot(tenant) {
            let mut status = slot.status.lock().expect("status poisoned");
            *status = (state, reason.to_string());
            slot.metrics.serving_state.set(state.as_gauge());
        }
    }

    /// Admission decision for one classification request at `now_secs`
    /// (seconds since the server's epoch).
    pub fn admit(&self, tenant: &str, now_secs: f64) -> Admission {
        let Some(slot) = self.existing_slot(tenant) else {
            return Admission::UnknownTenant;
        };
        let granted = slot
            .bucket
            .lock()
            .expect("bucket poisoned")
            .try_acquire_at(now_secs);
        if granted {
            Admission::Granted
        } else {
            slot.metrics.throttled.inc();
            crate::obs::throttled().inc();
            Admission::Throttled
        }
    }

    /// Tokens currently available in the tenant's admission bucket
    /// (`None` for an unknown tenant). For tests and introspection — the
    /// quota-burn regression suite asserts rejected requests leave this
    /// untouched.
    pub fn available_quota(&self, tenant: &str) -> Option<f64> {
        let slot = self.existing_slot(tenant)?;
        let available = slot.bucket.lock().expect("bucket poisoned").available();
        Some(available)
    }

    /// Records a successfully admitted classification for tenant metrics.
    pub(crate) fn record_classification(&self, tenant: &str, sequences: u64) {
        if let Some(slot) = self.existing_slot(tenant) {
            slot.metrics.requests.inc();
            slot.metrics.sequences.add(sequences);
        }
    }

    /// Every tenant's externally visible status, sorted by tenant name.
    pub fn tenants(&self) -> Vec<TenantInfo> {
        let map = self.tenants.lock().expect("registry poisoned");
        let mut out: Vec<TenantInfo> = map
            .iter()
            .map(|(name, slot)| {
                let model = slot.model.lock().expect("model slot poisoned").clone();
                let (state, reason) = slot.status.lock().expect("status poisoned").clone();
                TenantInfo {
                    tenant: name.clone(),
                    version: model.as_ref().map(|m| m.version()),
                    patterns: model.as_ref().map_or(0, |m| m.num_patterns()),
                    state,
                    reason,
                }
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// `(tenant, active version, pattern count)` for every tenant **with a
    /// model**, sorted by tenant name. Declared-but-modelless tenants are
    /// omitted; see [`Self::tenants`] for the full status view.
    pub fn tenant_versions(&self) -> Vec<(String, u64, usize)> {
        self.tenants()
            .into_iter()
            .filter_map(|t| t.version.map(|v| (t.tenant, v, t.patterns)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::lattice::Border;
    use noisemine_core::miner::{MineOutcome, MineStats};
    use noisemine_core::{Alphabet, CompatibilityMatrix};

    fn model(version: u64) -> ServeModel {
        let alphabet = Alphabet::synthetic(3);
        let matrix = CompatibilityMatrix::identity(3);
        let outcome = MineOutcome {
            frequent: Vec::new(),
            border: Border::default(),
            symbol_match: vec![0.0; 3],
            stats: MineStats::default(),
        };
        ServeModel::compile(PatternModel::from_outcome(
            &outcome, &alphabet, &matrix, 0.5, version,
        ))
    }

    #[test]
    fn swap_keeps_old_arc_alive() {
        let reg = ModelRegistry::new(0.0);
        assert_eq!(reg.swap("t", model(1)), None);
        let in_flight = reg.model("t").unwrap();
        assert_eq!(reg.swap("t", model(2)), Some(1));
        // The in-flight handle still sees version 1; new readers see 2.
        assert_eq!(in_flight.version(), 1);
        assert_eq!(reg.model("t").unwrap().version(), 2);
    }

    #[test]
    fn adopt_if_newer_never_downgrades() {
        let reg = ModelRegistry::new(0.0);
        assert_eq!(
            reg.adopt_if_newer("t", model(5)),
            Adoption::Adopted { old: None }
        );
        assert_eq!(
            reg.adopt_if_newer("t", model(5)),
            Adoption::NotNewer { current: 5 }
        );
        assert_eq!(
            reg.adopt_if_newer("t", model(3)),
            Adoption::NotNewer { current: 5 }
        );
        assert_eq!(reg.current_version("t"), Some(5));
        assert_eq!(
            reg.adopt_if_newer("t", model(6)),
            Adoption::Adopted { old: Some(5) }
        );
        // The explicit-operator path may still roll back.
        assert_eq!(reg.swap("t", model(2)), Some(6));
        assert_eq!(reg.current_version("t"), Some(2));
    }

    #[test]
    fn declared_tenant_is_degraded_not_unknown() {
        let reg = ModelRegistry::new(0.0);
        assert!(matches!(reg.lookup("ghost"), TenantLookup::Unknown));
        reg.declare("empty");
        assert!(matches!(reg.lookup("empty"), TenantLookup::NoModel));
        let infos = reg.tenants();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].version, None);
        assert_eq!(infos[0].state, ServingState::Stale);
        assert!(infos[0].reason.contains("no valid model"), "{:?}", infos[0]);
        // tenant_versions (models only) omits it.
        assert!(reg.tenant_versions().is_empty());
        // Adopting a model clears the degradation.
        assert!(matches!(
            reg.adopt_if_newer("empty", model(1)),
            Adoption::Adopted { old: None }
        ));
        assert_eq!(reg.tenants()[0].state, ServingState::Current);
        assert_eq!(reg.tenant_versions().len(), 1);
    }

    #[test]
    fn serving_state_round_trips() {
        let reg = ModelRegistry::new(0.0);
        reg.swap("t", model(1));
        reg.set_state("t", ServingState::CircuitOpen, "3 consecutive failures");
        let info = &reg.tenants()[0];
        assert_eq!(info.state, ServingState::CircuitOpen);
        assert_eq!(info.reason, "3 consecutive failures");
        assert_eq!(info.state.name(), "circuit_open");
        // Unknown tenants are a no-op, not a panic.
        reg.set_state("ghost", ServingState::Stale, "x");
    }

    #[test]
    fn admission_per_tenant() {
        let reg = ModelRegistry::new(1.0);
        reg.swap("a", model(1));
        reg.swap("b", model(1));
        assert_eq!(reg.admit("a", 0.0), Admission::Granted);
        assert_eq!(reg.admit("a", 0.0), Admission::Throttled);
        // Tenant b has its own bucket.
        assert_eq!(reg.admit("b", 0.0), Admission::Granted);
        assert_eq!(reg.admit("missing", 0.0), Admission::UnknownTenant);
        // a refills after a second.
        assert_eq!(reg.admit("a", 1.5), Admission::Granted);
    }

    #[test]
    fn tenant_versions_sorted() {
        let reg = ModelRegistry::new(0.0);
        reg.swap("zeta", model(3));
        reg.swap("alpha", model(9));
        let v = reg.tenant_versions();
        assert_eq!(v[0].0, "alpha");
        assert_eq!(v[0].1, 9);
        assert_eq!(v[1].0, "zeta");
    }
}
