//! The per-tenant model registry: compiled models, atomic hot-swap, and
//! admission state.
//!
//! Each tenant owns a slot whose active model is an ArcSwap-style epoch
//! pointer — a `Mutex<Arc<ServeModel>>`. A request clones the `Arc` under
//! a brief lock and then classifies entirely on its private handle, so a
//! concurrent [`ModelRegistry::swap`] never interrupts in-flight work:
//! requests started before the swap finish on the old model, requests
//! started after see the new one, and the old model is freed when its last
//! in-flight reference drops.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use noisemine_core::{CandidateTrie, Pattern, PatternModel};

use crate::admission::TokenBucket;
use crate::obs::TenantMetrics;

/// A pattern model compiled for serving: the frozen spec plus the shared
/// [`CandidateTrie`] the hot path batches against.
#[derive(Debug)]
pub struct ServeModel {
    /// The model as loaded from the artifact.
    pub spec: PatternModel,
    /// Patterns in model order (the order of every score vector).
    pub patterns: Vec<Pattern>,
    /// The compiled batch-match kernel (`None` for an empty pattern set).
    pub trie: Option<CandidateTrie>,
    /// Per-pattern response fragments (`"pattern": …, "match_estimate": …`),
    /// rendered and JSON-escaped once at compile time — the classify route
    /// serves them on every request without re-rendering.
    pub pattern_json: Vec<String>,
}

impl ServeModel {
    /// Compiles a model for serving. The trie and the per-pattern JSON
    /// fragments are built once here and shared by every request until the
    /// model is swapped out.
    pub fn compile(spec: PatternModel) -> Self {
        let patterns = spec.plain_patterns();
        let trie = if patterns.is_empty() {
            None
        } else {
            Some(CandidateTrie::new(&patterns))
        };
        let pattern_json = spec
            .patterns
            .iter()
            .map(|mp| {
                let display = mp
                    .pattern
                    .display(&spec.alphabet)
                    .unwrap_or_else(|_| "<unrenderable>".to_string());
                format!(
                    "\"pattern\": {}, \"match_estimate\": {}",
                    crate::json::escape(&display),
                    crate::json::num(mp.match_estimate),
                )
            })
            .collect();
        Self {
            spec,
            patterns,
            trie,
            pattern_json,
        }
    }

    /// The model's version.
    pub fn version(&self) -> u64 {
        self.spec.version
    }

    /// Number of patterns the model scores.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request may proceed.
    Granted,
    /// The tenant's token bucket is empty — answer 429.
    Throttled,
    /// No model is installed for the tenant — answer 404.
    UnknownTenant,
}

/// One tenant's serving state.
struct TenantSlot {
    /// The epoch pointer: swap replaces the `Arc`, readers clone it.
    model: Mutex<Arc<ServeModel>>,
    bucket: Mutex<TokenBucket>,
    metrics: TenantMetrics,
}

/// The multi-tenant model registry.
pub struct ModelRegistry {
    tenants: Mutex<HashMap<String, Arc<TenantSlot>>>,
    /// Per-tenant quota in requests/second (`<= 0` = unlimited), applied
    /// to tenants as they are installed.
    quota: f64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("tenants", &self.tenant_versions().len())
            .field("quota", &self.quota)
            .finish()
    }
}

impl ModelRegistry {
    /// An empty registry with a per-tenant quota (requests/second;
    /// non-positive = unlimited).
    pub fn new(quota: f64) -> Self {
        Self {
            tenants: Mutex::new(HashMap::new()),
            quota,
        }
    }

    /// Installs (or hot-swaps) `model` as the tenant's active model.
    ///
    /// Returns the previous version when the tenant already existed. The
    /// swap is atomic: concurrent classifications that already cloned the
    /// old `Arc` finish undisturbed.
    pub fn swap(&self, tenant: &str, model: ServeModel) -> Option<u64> {
        let new_version = model.version();
        let model = Arc::new(model);
        let slot = {
            let mut map = self.tenants.lock().expect("registry poisoned");
            if let Some(slot) = map.get(tenant) {
                Arc::clone(slot)
            } else {
                let slot = Arc::new(TenantSlot {
                    model: Mutex::new(Arc::clone(&model)),
                    bucket: Mutex::new(TokenBucket::per_second(self.quota)),
                    metrics: TenantMetrics::register(tenant),
                });
                map.insert(tenant.to_string(), Arc::clone(&slot));
                slot.metrics.model_version.set(new_version as f64);
                return None;
            }
        };
        let old = {
            let mut active = slot.model.lock().expect("model slot poisoned");
            std::mem::replace(&mut *active, model)
        };
        slot.metrics.model_version.set(new_version as f64);
        Some(old.version())
    }

    /// The tenant's active model (cloned `Arc`; survives any later swap).
    pub fn model(&self, tenant: &str) -> Option<Arc<ServeModel>> {
        let slot = {
            let map = self.tenants.lock().expect("registry poisoned");
            map.get(tenant).cloned()?
        };
        let model = slot.model.lock().expect("model slot poisoned").clone();
        Some(model)
    }

    /// Admission decision for one classification request at `now_secs`
    /// (seconds since the server's epoch).
    pub fn admit(&self, tenant: &str, now_secs: f64) -> Admission {
        let slot = {
            let map = self.tenants.lock().expect("registry poisoned");
            match map.get(tenant) {
                Some(s) => Arc::clone(s),
                None => return Admission::UnknownTenant,
            }
        };
        let granted = slot
            .bucket
            .lock()
            .expect("bucket poisoned")
            .try_acquire_at(now_secs);
        if granted {
            Admission::Granted
        } else {
            slot.metrics.throttled.inc();
            crate::obs::throttled().inc();
            Admission::Throttled
        }
    }

    /// Tokens currently available in the tenant's admission bucket
    /// (`None` for an unknown tenant). For tests and introspection — the
    /// quota-burn regression suite asserts rejected requests leave this
    /// untouched.
    pub fn available_quota(&self, tenant: &str) -> Option<f64> {
        let slot = {
            let map = self.tenants.lock().expect("registry poisoned");
            map.get(tenant).cloned()?
        };
        let available = slot.bucket.lock().expect("bucket poisoned").available();
        Some(available)
    }

    /// Records a successfully admitted classification for tenant metrics.
    pub(crate) fn record_classification(&self, tenant: &str, sequences: u64) {
        let slot = {
            let map = self.tenants.lock().expect("registry poisoned");
            map.get(tenant).cloned()
        };
        if let Some(slot) = slot {
            slot.metrics.requests.inc();
            slot.metrics.sequences.add(sequences);
        }
    }

    /// `(tenant, active version, pattern count)` for every tenant, sorted
    /// by tenant name.
    pub fn tenant_versions(&self) -> Vec<(String, u64, usize)> {
        let map = self.tenants.lock().expect("registry poisoned");
        let mut out: Vec<(String, u64, usize)> = map
            .iter()
            .map(|(name, slot)| {
                let model = slot.model.lock().expect("model slot poisoned");
                (name.clone(), model.version(), model.num_patterns())
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::lattice::Border;
    use noisemine_core::miner::{MineOutcome, MineStats};
    use noisemine_core::{Alphabet, CompatibilityMatrix};

    fn model(version: u64) -> ServeModel {
        let alphabet = Alphabet::synthetic(3);
        let matrix = CompatibilityMatrix::identity(3);
        let outcome = MineOutcome {
            frequent: Vec::new(),
            border: Border::default(),
            symbol_match: vec![0.0; 3],
            stats: MineStats::default(),
        };
        ServeModel::compile(PatternModel::from_outcome(
            &outcome, &alphabet, &matrix, 0.5, version,
        ))
    }

    #[test]
    fn swap_keeps_old_arc_alive() {
        let reg = ModelRegistry::new(0.0);
        assert_eq!(reg.swap("t", model(1)), None);
        let in_flight = reg.model("t").unwrap();
        assert_eq!(reg.swap("t", model(2)), Some(1));
        // The in-flight handle still sees version 1; new readers see 2.
        assert_eq!(in_flight.version(), 1);
        assert_eq!(reg.model("t").unwrap().version(), 2);
    }

    #[test]
    fn admission_per_tenant() {
        let reg = ModelRegistry::new(1.0);
        reg.swap("a", model(1));
        reg.swap("b", model(1));
        assert_eq!(reg.admit("a", 0.0), Admission::Granted);
        assert_eq!(reg.admit("a", 0.0), Admission::Throttled);
        // Tenant b has its own bucket.
        assert_eq!(reg.admit("b", 0.0), Admission::Granted);
        assert_eq!(reg.admit("missing", 0.0), Admission::UnknownTenant);
        // a refills after a second.
        assert_eq!(reg.admit("a", 1.5), Admission::Granted);
    }

    #[test]
    fn tenant_versions_sorted() {
        let reg = ModelRegistry::new(0.0);
        reg.swap("zeta", model(3));
        reg.swap("alpha", model(9));
        let v = reg.tenant_versions();
        assert_eq!(v[0].0, "alpha");
        assert_eq!(v[0].1, 9);
        assert_eq!(v[1].0, "zeta");
    }
}
