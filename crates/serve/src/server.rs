//! The long-running server: non-blocking accept loop, worker thread pool,
//! and the HTTP/JSON route handlers.
//!
//! ## Architecture
//!
//! One accept thread runs a non-blocking `accept()` poll on a
//! [`std::net::TcpListener`] and hands connections to a fixed pool of
//! worker threads over an `mpsc` channel — no external runtime, matching
//! the workspace's zero-dependency ethos. Shutdown (the `/admin/shutdown`
//! route, or [`Server::stop`]) flips one flag: the accept thread stops
//! taking new connections and drops the channel sender; workers drain
//! every already-accepted connection before exiting, so **no admitted
//! request is ever dropped** — including across a model hot-swap, which
//! only replaces an `Arc` in the registry.
//!
//! ## Routes
//!
//! | Route                  | Method | Purpose |
//! |------------------------|--------|---------|
//! | `/v1/classify`         | POST   | Score sequences against the tenant's active model |
//! | `/metrics`             | GET    | Prometheus rendering of the process metrics registry |
//! | `/healthz`             | GET    | Liveness probe |
//! | `/admin/models`        | GET    | Tenants, active versions, pattern counts |
//! | `/admin/swap`          | POST   | Load an `NMMODEL` artifact and hot-swap it in |
//! | `/admin/shutdown`      | POST   | Graceful shutdown |
//!
//! See `docs/SERVING.md` for request/response examples.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use noisemine_core::Symbol;

use crate::classify::classify;
use crate::http::{read_request, write_response, Request, Response};
use crate::json::{self, Value};
use crate::model_io::read_model;
use crate::registry::{Admission, ModelRegistry, ServeModel};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::stop`] (or POST `/admin/shutdown`) and then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Shared request-handling context.
pub(crate) struct Ctx {
    registry: Arc<ModelRegistry>,
    shutdown: Arc<AtomicBool>,
    /// Epoch for admission-control timestamps.
    start: Instant,
}

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns.
    ///
    /// Also enables the process metrics registry — a serving process is an
    /// observability surface by definition (`/metrics` is a core route).
    pub fn start(config: &ServeConfig, registry: Arc<ModelRegistry>) -> io::Result<Server> {
        noisemine_obs::enable();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            registry: Arc::clone(&registry),
            shutdown: Arc::clone(&shutdown),
            start: Instant::now(),
        });
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &ctx))
                    .expect("spawn worker"),
            );
        }
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || {
                // `tx` moves in here; dropping it on exit disconnects the
                // workers once they have drained the queue.
                while !accept_shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            crate::obs::requests().inc();
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })
            .expect("spawn accept loop");
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            registry,
        })
    }

    /// The actual bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server serves from (for out-of-band swaps).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Requests a graceful shutdown (idempotent, non-blocking).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the accept loop and every worker have exited. Workers
    /// finish all connections accepted before shutdown.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<TcpStream>>, ctx: &Ctx) {
    loop {
        let stream = {
            let rx = rx.lock().expect("worker channel poisoned");
            rx.recv_timeout(Duration::from_millis(50))
        };
        match stream {
            Ok(stream) => handle_connection(stream, ctx),
            // Timeout just means "idle, poll again". During shutdown the
            // accept thread drops the sender, so once the queue is drained
            // recv returns Disconnected and the worker exits — every
            // already-accepted connection gets served first.
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    // Accepted sockets can inherit the listener's non-blocking flag.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let response = match read_request(&mut stream) {
        Ok(Some(request)) => handle_request(ctx, &request),
        Ok(None) => return, // probe connection, nothing to answer
        Err(e) => {
            crate::obs::client_errors().inc();
            Response::error(400, &format!("malformed request: {e}"))
        }
    };
    let _ = write_response(&mut stream, &response);
}

/// Routes one request. Public crate-wide so tests can drive the router
/// without a socket.
pub(crate) fn handle_request(ctx: &Ctx, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\": \"ok\"}".to_string()),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: noisemine_obs::global().snapshot().to_prometheus(),
        },
        ("GET", "/admin/models") => models_response(&ctx.registry),
        ("POST", "/admin/swap") => swap(ctx, request),
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"status\": \"shutting down\"}".to_string())
        }
        ("POST", "/v1/classify") => classify_route(ctx, request),
        (
            _,
            "/healthz" | "/metrics" | "/admin/models" | "/admin/swap" | "/admin/shutdown"
            | "/v1/classify",
        ) => {
            crate::obs::client_errors().inc();
            Response::error(405, "method not allowed for this route")
        }
        _ => {
            crate::obs::client_errors().inc();
            Response::error(404, &format!("no such route: {}", request.path))
        }
    }
}

fn models_response(registry: &ModelRegistry) -> Response {
    let rows: Vec<String> = registry
        .tenant_versions()
        .into_iter()
        .map(|(tenant, version, patterns)| {
            format!(
                "{{\"tenant\": {}, \"version\": {version}, \"patterns\": {patterns}}}",
                json::escape(&tenant)
            )
        })
        .collect();
    Response::json(200, format!("{{\"tenants\": [{}]}}", rows.join(", ")))
}

fn swap(ctx: &Ctx, request: &Request) -> Response {
    let doc = match json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("swap request: {e}"));
        }
    };
    let tenant = doc
        .get("tenant")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();
    let Some(path) = doc.get("path").and_then(Value::as_str) else {
        crate::obs::client_errors().inc();
        return Response::error(
            400,
            "swap request needs a \"path\" field (NMMODEL artifact)",
        );
    };
    let spec = match read_model(path) {
        Ok(spec) => spec,
        Err(e) => {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("cannot load model: {e}"));
        }
    };
    let model = ServeModel::compile(spec);
    let new_version = model.version();
    let patterns = model.num_patterns();
    let old_version = ctx.registry.swap(&tenant, model);
    crate::obs::swaps().inc();
    let old = match old_version {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"old_version\": {old}, \"new_version\": {new_version}, \
             \"patterns\": {patterns}}}",
            json::escape(&tenant)
        ),
    )
}

fn classify_route(ctx: &Ctx, request: &Request) -> Response {
    let doc = match json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("classify request: {e}"));
        }
    };
    let tenant = doc
        .get("tenant")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();
    match ctx
        .registry
        .admit(&tenant, ctx.start.elapsed().as_secs_f64())
    {
        Admission::Granted => {}
        Admission::UnknownTenant => {
            crate::obs::client_errors().inc();
            return Response::error(404, &format!("no model installed for tenant {tenant:?}"));
        }
        Admission::Throttled => {
            return Response::error(429, &format!("quota exhausted for tenant {tenant:?}"));
        }
    }
    let Some(model) = ctx.registry.model(&tenant) else {
        crate::obs::client_errors().inc();
        return Response::error(404, &format!("no model installed for tenant {tenant:?}"));
    };
    let Some(raw) = doc.get("sequences").and_then(Value::as_arr) else {
        crate::obs::client_errors().inc();
        return Response::error(
            400,
            "classify request needs a \"sequences\" field: an array of symbol-name arrays",
        );
    };
    let mut sequences: Vec<Vec<Symbol>> = Vec::with_capacity(raw.len());
    for (i, seq) in raw.iter().enumerate() {
        let Some(elems) = seq.as_arr() else {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("sequence {i} is not an array"));
        };
        let mut encoded = Vec::with_capacity(elems.len());
        for (j, e) in elems.iter().enumerate() {
            let Some(name) = e.as_str() else {
                crate::obs::client_errors().inc();
                return Response::error(
                    400,
                    &format!("sequence {i} element {j} is not a symbol-name string"),
                );
            };
            match model.spec.alphabet.symbol(name) {
                Ok(sym) => encoded.push(sym),
                Err(_) => {
                    crate::obs::client_errors().inc();
                    return Response::error(
                        400,
                        &format!(
                            "sequence {i} element {j}: symbol {name:?} is not in the model's \
                             {}-symbol alphabet",
                            model.spec.alphabet.len()
                        ),
                    );
                }
            }
        }
        sequences.push(encoded);
    }
    let span = crate::obs::classify_seconds().span();
    let result = classify(&model, &sequences);
    span.finish();
    crate::obs::classifications().inc();
    crate::obs::sequences_classified().add(sequences.len() as u64);
    ctx.registry
        .record_classification(&tenant, sequences.len() as u64);
    let mut patterns_json = Vec::with_capacity(model.num_patterns());
    for (p, mp) in model.spec.patterns.iter().enumerate() {
        let display = mp
            .pattern
            .display(&model.spec.alphabet)
            .unwrap_or_else(|_| "<unrenderable>".to_string());
        let scores: Vec<String> = result
            .per_sequence
            .iter()
            .map(|row| json::num(row[p]))
            .collect();
        patterns_json.push(format!(
            "{{\"pattern\": {}, \"match_estimate\": {}, \"db_match\": {}, \
             \"sequence_scores\": [{}]}}",
            json::escape(&display),
            json::num(mp.match_estimate),
            json::num(result.db_match[p]),
            scores.join(", ")
        ));
    }
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"model_version\": {}, \"num_patterns\": {}, \
             \"num_sequences\": {}, \"patterns\": [{}]}}",
            json::escape(&tenant),
            result.model_version,
            model.num_patterns(),
            sequences.len(),
            patterns_json.join(", ")
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::lattice::Border;
    use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
    use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel};

    fn ctx_with_model(quota: f64) -> Arc<Ctx> {
        let alphabet = Alphabet::synthetic(4);
        let matrix = CompatibilityMatrix::uniform_noise(4, 0.1).unwrap();
        let outcome = MineOutcome {
            frequent: vec![FrequentPattern {
                pattern: Pattern::contiguous(&[Symbol(0), Symbol(1)]).unwrap(),
                match_estimate: 0.5,
                provenance: Provenance::Verified,
            }],
            border: Border::default(),
            symbol_match: vec![0.4; 4],
            stats: MineStats::default(),
        };
        let registry = Arc::new(ModelRegistry::new(quota));
        registry.swap(
            "default",
            ServeModel::compile(PatternModel::from_outcome(
                &outcome, &alphabet, &matrix, 0.1, 3,
            )),
        );
        Arc::new(Ctx {
            registry,
            shutdown: Arc::new(AtomicBool::new(false)),
            start: Instant::now(),
        })
    }

    fn post(ctx: &Ctx, path: &str, body: &str) -> Response {
        handle_request(
            ctx,
            &Request {
                method: "POST".to_string(),
                path: path.to_string(),
                body: body.to_string(),
            },
        )
    }

    #[test]
    fn classify_route_scores() {
        let ctx = ctx_with_model(0.0);
        let r = post(
            &ctx,
            "/v1/classify",
            r#"{"sequences": [["d0", "d1", "d2"]]}"#,
        );
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"model_version\": 3"), "{}", r.body);
        assert!(r.body.contains("\"db_match\""), "{}", r.body);
    }

    #[test]
    fn unknown_symbol_is_400() {
        let ctx = ctx_with_model(0.0);
        let r = post(&ctx, "/v1/classify", r#"{"sequences": [["nope"]]}"#);
        assert_eq!(r.status, 400);
        assert!(r.body.contains("nope"), "{}", r.body);
    }

    #[test]
    fn unknown_tenant_is_404() {
        let ctx = ctx_with_model(0.0);
        let r = post(
            &ctx,
            "/v1/classify",
            r#"{"tenant": "ghost", "sequences": []}"#,
        );
        assert_eq!(r.status, 404);
    }

    #[test]
    fn bad_json_is_400() {
        let ctx = ctx_with_model(0.0);
        let r = post(&ctx, "/v1/classify", "{nope");
        assert_eq!(r.status, 400);
    }

    #[test]
    fn unknown_route_is_404_and_wrong_method_is_405() {
        let ctx = ctx_with_model(0.0);
        assert_eq!(post(&ctx, "/nope", "").status, 404);
        assert_eq!(post(&ctx, "/metrics", "").status, 405);
    }
}
