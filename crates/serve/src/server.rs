//! The long-running server: a `poll(2)` readiness event loop, a worker
//! thread pool, persistent HTTP/1.1 connections, and the JSON route
//! handlers.
//!
//! ## Architecture
//!
//! One event-loop thread owns the listener and every **parked** (idle
//! keep-alive) connection, multiplexing them through a single `poll(2)`
//! call (raw FFI in the private `poll` module — no external runtime, matching the
//! workspace's zero-dependency ethos). When a parked connection becomes
//! readable it is handed to a fixed pool of worker threads over an `mpsc`
//! channel; the worker reads requests, answers them, serves any pipelined
//! followers already buffered, and then *returns* the connection to the
//! event loop (a self-pipe wakeup interrupts the poll). Many idle
//! connections therefore cost no worker at all — workers only ever hold
//! connections that have bytes to process.
//!
//! Connection lifetime is bounded two ways: an **idle timeout** (parked
//! connections that stay silent are evicted; the same duration bounds
//! reads inside a trickled request, so a slow-loris peer cannot pin a
//! worker) and an optional **requests-per-connection cap** (the final
//! response carries `Connection: close`).
//!
//! Shutdown (the `/admin/shutdown` route, or [`Server::stop`]) starts a
//! graceful drain: the listener closes immediately, requests already
//! dispatched complete normally (their response switches to
//! `Connection: close`), and parked connections get a **drain grace**
//! window in which any request they submit is answered `503` + close.
//! No dispatched request is ever dropped — including across a model
//! hot-swap, which only replaces an `Arc` in the registry.
//!
//! ## Routes
//!
//! | Route                  | Method | Purpose |
//! |------------------------|--------|---------|
//! | `/v1/classify`         | POST   | Score sequences against the tenant's active model |
//! | `/metrics`             | GET    | Prometheus rendering of the process metrics registry |
//! | `/healthz`             | GET    | Liveness probe — always `200` while the process can answer |
//! | `/readyz`              | GET    | Readiness probe — `200` only when every tenant has a valid model; degraded tenants listed with reasons |
//! | `/admin/models`        | GET    | Tenants, active versions, pattern counts, serving states |
//! | `/admin/swap`          | POST   | Load an `NMMODEL` artifact and hot-swap it in |
//! | `/admin/shutdown`      | POST   | Graceful drain + shutdown |
//!
//! Liveness and readiness are deliberately distinct: `/healthz` answers
//! `200` as long as the event loop breathes (restart the process only if
//! *that* fails), while `/readyz` reports whether every configured tenant
//! can actually be served (`503` + per-tenant reasons otherwise — route
//! traffic away, don't restart; the catalog supervisor or drift loop is
//! already working the problem).
//!
//! See `docs/SERVING.md` for request/response examples and the full
//! connection-lifecycle contract.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use noisemine_core::{MatchKernel, Symbol};

use crate::classify::classify_with;
use crate::drift::DriftController;
use crate::http::{
    read_request_buffered, try_parse_request, write_response, ConnBuf, Request, Response,
};
use crate::json::{self, Value};
use crate::model_io::read_model;
use crate::poll::{poll_fds, PollFd, WakePipe};
use crate::registry::{Admission, ModelRegistry, ServeModel, TenantLookup};

/// Bound on one response write (a stuck reader cannot pin a worker).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Maximum requests served on one connection before the server closes
    /// it (`Connection: close` on the final response). `0` = unlimited.
    pub max_requests_per_conn: usize,
    /// Parked keep-alive connections idle longer than this are evicted;
    /// the same duration bounds socket reads inside a trickled request.
    pub idle_timeout: Duration,
    /// After shutdown is requested, how long parked connections may still
    /// submit a final request (answered `503` + `Connection: close`)
    /// before the event loop exits.
    pub drain_grace: Duration,
    /// Match kernel for `/classify` scoring (`noisemine serve --kernel`).
    /// Purely operational — all kernels produce identical scores (the
    /// columnar simd kernel is held to the trie by a zero-ULP contract),
    /// so responses never depend on the choice.
    pub kernel: MatchKernel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_requests_per_conn: 0,
            idle_timeout: Duration::from_secs(10),
            drain_grace: Duration::from_millis(500),
            kernel: MatchKernel::Trie,
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::stop`] (or POST `/admin/shutdown`) and then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    event_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Shared request-handling context.
pub(crate) struct Ctx {
    registry: Arc<ModelRegistry>,
    shutdown: Arc<AtomicBool>,
    /// Epoch for admission-control timestamps.
    start: Instant,
    /// Interrupts the event loop's poll when shutdown is requested from a
    /// route handler (`None` in router-only tests).
    wake: Option<Arc<WakePipe>>,
    /// Classified batches are forwarded here (best-effort) when the
    /// in-server drift loop is enabled.
    drift: Option<Arc<DriftController>>,
    /// Match kernel for `/classify` scoring (see [`ServeConfig::kernel`]).
    kernel: MatchKernel,
}

impl Ctx {
    /// Flips the shutdown flag and kicks the event loop awake so the
    /// drain starts immediately rather than at the next poll timeout.
    fn notify_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(wake) = &self.wake {
            wake.wake();
        }
    }
}

/// One live connection: the socket, its carry-over parse buffer, and the
/// per-connection request count the keep-alive cap is enforced against.
struct Conn {
    stream: TcpStream,
    buf: ConnBuf,
    /// Requests already served on this connection.
    served: usize,
    /// When the connection was last parked (or accepted) — the idle
    /// timeout measures from here.
    parked_at: Instant,
    /// Open-connection accounting; decrements on drop wherever the
    /// connection dies (worker close, idle eviction, drain teardown).
    _track: ConnTrack,
}

struct ConnTrack {
    open: Arc<AtomicI64>,
}

impl Drop for ConnTrack {
    fn drop(&mut self) {
        let now = self.open.fetch_sub(1, Ordering::SeqCst) - 1;
        crate::obs::open_connections().set(now as f64);
    }
}

/// A readable connection handed to a worker, with the drain flag captured
/// at dispatch time (requests dispatched before drain complete normally;
/// requests dispatched after answer 503).
struct Job {
    conn: Conn,
    draining: bool,
}

/// State the workers share with the event loop.
struct Shared {
    ctx: Arc<Ctx>,
    /// Workers park still-alive keep-alive connections back here…
    return_tx: mpsc::Sender<Conn>,
    /// …and wake the event loop so the poll set picks them up.
    wake: Arc<WakePipe>,
    max_requests_per_conn: usize,
}

impl Server {
    /// Binds, spawns the event loop and worker pool, and returns.
    ///
    /// Also enables the process metrics registry — a serving process is an
    /// observability surface by definition (`/metrics` is a core route).
    pub fn start(config: &ServeConfig, registry: Arc<ModelRegistry>) -> io::Result<Server> {
        Self::start_with(config, registry, None)
    }

    /// [`Server::start`] with the in-server drift loop attached: every
    /// successfully classified batch is forwarded to `drift` (best-effort,
    /// never blocking the request).
    pub fn start_with(
        config: &ServeConfig,
        registry: Arc<ModelRegistry>,
        drift: Option<Arc<DriftController>>,
    ) -> io::Result<Server> {
        noisemine_obs::enable();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let wake = Arc::new(WakePipe::new()?);
        let ctx = Arc::new(Ctx {
            registry: Arc::clone(&registry),
            shutdown: Arc::clone(&shutdown),
            start: Instant::now(),
            wake: Some(Arc::clone(&wake)),
            drift,
            kernel: config.kernel,
        });
        let (dispatch_tx, dispatch_rx) = mpsc::channel::<Job>();
        let (return_tx, return_rx) = mpsc::channel::<Conn>();
        let dispatch_rx = Arc::new(Mutex::new(dispatch_rx));
        let shared = Arc::new(Shared {
            ctx: Arc::clone(&ctx),
            return_tx,
            wake: Arc::clone(&wake),
            max_requests_per_conn: config.max_requests_per_conn,
        });
        let threads = config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&dispatch_rx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker"),
            );
        }
        let loop_ctx = Arc::clone(&ctx);
        let loop_wake = Arc::clone(&wake);
        let idle_timeout = config.idle_timeout;
        let drain_grace = config.drain_grace;
        let event_thread = std::thread::Builder::new()
            .name("serve-events".to_string())
            .spawn(move || {
                // `dispatch_tx` moves in here; dropping it on exit
                // disconnects the workers once they drain the queue.
                event_loop(
                    listener,
                    &loop_ctx,
                    &dispatch_tx,
                    &return_rx,
                    &loop_wake,
                    idle_timeout,
                    drain_grace,
                );
            })
            .expect("spawn event loop");
        Ok(Server {
            addr,
            shutdown,
            wake,
            event_thread: Some(event_thread),
            workers,
            registry,
        })
    }

    /// The actual bound address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server serves from (for out-of-band swaps).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Requests a graceful drain + shutdown (idempotent, non-blocking).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.wake();
    }

    /// Whether shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the event loop and every worker have exited. Workers
    /// finish every connection dispatched before shutdown.
    pub fn join(mut self) {
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The readiness loop: one `poll(2)` over the wake pipe, the listener,
/// and every parked connection.
fn event_loop(
    listener: TcpListener,
    ctx: &Ctx,
    dispatch_tx: &mpsc::Sender<Job>,
    return_rx: &mpsc::Receiver<Conn>,
    wake: &WakePipe,
    idle_timeout: Duration,
    drain_grace: Duration,
) {
    let open = Arc::new(AtomicI64::new(0));
    let mut listener = Some(listener);
    let mut idle: Vec<Conn> = Vec::new();
    let mut drain_started: Option<Instant> = None;
    loop {
        // Absorb connections the workers parked back.
        while let Ok(mut conn) = return_rx.try_recv() {
            conn.parked_at = Instant::now();
            idle.push(conn);
        }
        if ctx.shutdown.load(Ordering::SeqCst) && drain_started.is_none() {
            drain_started = Some(Instant::now());
            // Closing the listener refuses new connections at once; the
            // already-parked ones get the drain-grace window below.
            listener = None;
        }
        let now = Instant::now();
        let before = idle.len();
        idle.retain(|c| now.duration_since(c.parked_at) < idle_timeout);
        if idle.len() != before {
            crate::obs::idle_evictions().add((before - idle.len()) as u64);
        }
        if let Some(t0) = drain_started {
            // Exit when every connection is gone — parked AND worker-held
            // (a worker may still be finishing an in-flight request and
            // about to park its connection back; exiting on an empty
            // `idle` alone would drop that connection unanswered) — or
            // when the grace window runs out.
            let all_closed = open.load(Ordering::SeqCst) == 0 && idle.is_empty();
            if all_closed || now.duration_since(t0) >= drain_grace {
                break;
            }
        }
        crate::obs::idle_connections().set(idle.len() as f64);

        // Poll until the nearest deadline: the soonest idle eviction, or
        // the end of the drain grace. With neither, sleep until woken.
        let mut timeout_ms: i32 = -1;
        let consider = |timeout_ms: &mut i32, d: Duration| {
            let ms = (d.as_millis().min(i32::MAX as u128) as i32).max(1);
            if *timeout_ms < 0 || ms < *timeout_ms {
                *timeout_ms = ms;
            }
        };
        if let Some(soonest) = idle
            .iter()
            .map(|c| idle_timeout.saturating_sub(now.duration_since(c.parked_at)))
            .min()
        {
            consider(&mut timeout_ms, soonest);
        }
        if let Some(t0) = drain_started {
            consider(
                &mut timeout_ms,
                drain_grace.saturating_sub(now.duration_since(t0)),
            );
            // Workers closing their last connection don't wake the loop;
            // poll on a short leash so the drain notices `open == 0`
            // promptly instead of sleeping out the grace window.
            consider(&mut timeout_ms, Duration::from_millis(10));
        }

        let mut fds = Vec::with_capacity(idle.len() + 2);
        fds.push(wake.poll_fd());
        let listener_slot = listener.as_ref().map(|l| {
            fds.push(PollFd::readable(l.as_raw_fd()));
            fds.len() - 1
        });
        let base = fds.len();
        for conn in &idle {
            fds.push(PollFd::readable(conn.stream.as_raw_fd()));
        }
        if poll_fds(&mut fds, timeout_ms).is_err() {
            // poll(2) failing outright (EBADF etc.) would spin; back off a
            // beat and rebuild the set from scratch.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        crate::obs::poll_wakeups().inc();
        if fds[0].is_ready() {
            wake.drain();
        }

        // Dispatch parked connections with pending bytes (back-to-front so
        // swap_remove leaves earlier indices aligned with `fds`).
        let draining = drain_started.is_some();
        for i in (0..idle.len()).rev() {
            if fds[base + i].is_ready() {
                let conn = idle.swap_remove(i);
                if dispatch_tx.send(Job { conn, draining }).is_err() {
                    return;
                }
            }
        }

        // Accept everything pending; new connections park until readable,
        // so probe connects that never send cost no worker.
        if let (Some(slot), Some(l)) = (listener_slot, listener.as_ref()) {
            if fds[slot].is_ready() {
                loop {
                    match l.accept() {
                        Ok((stream, _peer)) => {
                            crate::obs::connections().inc();
                            let count = open.fetch_add(1, Ordering::SeqCst) + 1;
                            crate::obs::open_connections().set(count as f64);
                            // Accepted sockets inherit the listener's
                            // non-blocking flag; workers read blocking
                            // with bounded timeouts.
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_read_timeout(Some(idle_timeout));
                            let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                            let _ = crate::poll::set_tcp_nodelay(stream.as_raw_fd());
                            idle.push(Conn {
                                stream,
                                buf: ConnBuf::new(),
                                served: 0,
                                parked_at: Instant::now(),
                                _track: ConnTrack {
                                    open: Arc::clone(&open),
                                },
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        }
    }
    crate::obs::idle_connections().set(0.0);
    // Returning drops the event thread's `dispatch_tx`, disconnecting the
    // workers once they finish the queued jobs; still-parked connections
    // close on drop.
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>, shared: &Shared) {
    loop {
        let job = {
            let rx = rx.lock().expect("worker channel poisoned");
            rx.recv()
        };
        match job {
            Ok(job) => handle_conn(job, shared),
            // The event loop exited and the queue is drained: every
            // dispatched connection has been served.
            Err(_) => break,
        }
    }
}

/// How long a worker lingers on an active connection waiting for its next
/// request before parking it back in the event loop. An active client's
/// turnaround is typically well under this, so the hot path skips the full
/// park → poll → dispatch round trip per request.
const HOT_POLL_MS: i32 = 1;

/// Consecutive hot-window requests a worker serves before force-parking
/// the connection — bounds how long one busy client can hold a worker
/// while other connections queue.
const HOT_BUDGET: usize = 128;

/// Reads the next request off a dispatched connection. `None` means the
/// connection is done: clean close, timeout/hangup, or a malformed request
/// (answered with 400 before closing).
fn read_or_reject(conn: &mut Conn) -> Option<Request> {
    // The caller saw pending bytes (poll readiness), so this blocking read
    // does not stall on an idle peer; the socket read timeout bounds
    // trickle.
    match read_request_buffered(&mut conn.stream, &mut conn.buf) {
        Ok(request) => request, // None: clean close between requests (or a probe)
        Err(e) => {
            if e.kind() == io::ErrorKind::InvalidData {
                crate::obs::client_errors().inc();
                let _ = write_response(
                    &mut conn.stream,
                    &Response::error(400, &format!("malformed request: {e}")),
                    false,
                );
            }
            // Read timeouts / mid-request hangups: nothing to answer.
            None
        }
    }
}

/// Serves one dispatched connection: the request that made it readable,
/// any pipelined followers already buffered, then any follow-up requests
/// that land within the hot window, then parks it back in the event loop
/// (or closes it).
fn handle_conn(job: Job, shared: &Shared) {
    let Job { mut conn, draining } = job;
    let ctx = &*shared.ctx;
    let mut request = match read_or_reject(&mut conn) {
        Some(request) => request,
        None => return,
    };
    let mut hot_served = 0usize;
    loop {
        if draining {
            crate::obs::drain_rejects().inc();
            let _ = write_response(
                &mut conn.stream,
                &Response::error(503, "server is draining; connection closing"),
                false,
            );
            return;
        }
        conn.served += 1;
        if conn.served > 1 {
            crate::obs::keepalive_reuses().inc();
        }
        let response = handle_request(ctx, &request);
        let at_cap =
            shared.max_requests_per_conn > 0 && conn.served >= shared.max_requests_per_conn;
        let close = request.close || at_cap || ctx.shutdown.load(Ordering::SeqCst);
        if write_response(&mut conn.stream, &response, !close).is_err() || close {
            return;
        }
        match try_parse_request(&mut conn.buf) {
            // A pipelined follower is already buffered — serve it now;
            // parking would strand it (no new socket bytes, no poll event).
            Ok(Some(next)) => {
                crate::obs::pipelined_requests().inc();
                request = next;
            }
            Ok(None) => {
                // Hot window: linger briefly for the client's next request
                // before paying the park → poll → dispatch round trip.
                if hot_served < HOT_BUDGET && !ctx.shutdown.load(Ordering::SeqCst) {
                    let mut fds = [PollFd::readable(conn.stream.as_raw_fd())];
                    let hit = matches!(
                        poll_fds(&mut fds, HOT_POLL_MS),
                        Ok(n) if n > 0 && fds[0].is_ready()
                    );
                    if hit {
                        hot_served += 1;
                        match read_or_reject(&mut conn) {
                            Some(next) => {
                                request = next;
                                continue;
                            }
                            None => return,
                        }
                    }
                }
                conn.parked_at = Instant::now();
                // Park the connection; the wake makes the event loop pick
                // it up immediately. A send error means the loop already
                // exited — dropping the connection closes it.
                if shared.return_tx.send(conn).is_ok() {
                    shared.wake.wake();
                }
                return;
            }
            Err(e) => {
                crate::obs::client_errors().inc();
                let _ = write_response(
                    &mut conn.stream,
                    &Response::error(400, &format!("malformed request: {e}")),
                    false,
                );
                return;
            }
        }
    }
}

/// Routes one request. Public crate-wide so tests can drive the router
/// without a socket.
pub(crate) fn handle_request(ctx: &Ctx, request: &Request) -> Response {
    // Counted here — at parse/route time — so probe connections that never
    // send a request don't inflate request volume (connections are counted
    // separately at accept).
    crate::obs::requests().inc();
    match (request.method.as_str(), request.path.as_str()) {
        // Pure liveness: the process parsed and routed this request, so it
        // is alive. Model availability is /readyz's business.
        ("GET", "/healthz") => Response::json(200, "{\"status\": \"ok\"}".to_string()),
        ("GET", "/readyz") => readyz_response(&ctx.registry),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: noisemine_obs::global().snapshot().to_prometheus(),
        },
        ("GET", "/admin/models") => models_response(&ctx.registry),
        ("POST", "/admin/swap") => swap(ctx, request),
        ("POST", "/admin/shutdown") => {
            ctx.notify_shutdown();
            Response::json(200, "{\"status\": \"shutting down\"}".to_string())
        }
        ("POST", "/v1/classify") => classify_route(ctx, request),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/admin/models" | "/admin/swap"
            | "/admin/shutdown" | "/v1/classify",
        ) => {
            crate::obs::client_errors().inc();
            Response::error(405, "method not allowed for this route")
        }
        _ => {
            crate::obs::client_errors().inc();
            Response::error(404, &format!("no such route: {}", request.path))
        }
    }
}

fn models_response(registry: &ModelRegistry) -> Response {
    let rows: Vec<String> = registry
        .tenants()
        .into_iter()
        .map(|info| {
            let version = match info.version {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"tenant\": {}, \"version\": {version}, \"patterns\": {}, \
                 \"state\": {}, \"reason\": {}}}",
                json::escape(&info.tenant),
                info.patterns,
                json::escape(info.state.name()),
                json::escape(&info.reason)
            )
        })
        .collect();
    Response::json(200, format!("{{\"tenants\": [{}]}}", rows.join(", ")))
}

/// Readiness: `200` only when every known tenant has a model to serve.
/// Degraded tenants (modelless, or with an open breaker) are listed with
/// their reasons so an operator — or a load balancer — can see exactly
/// what is wrong without grepping logs. The server itself keeps serving
/// every healthy tenant; readiness is per-process, degradation per-tenant.
fn readyz_response(registry: &ModelRegistry) -> Response {
    let tenants = registry.tenants();
    let degraded: Vec<&crate::registry::TenantInfo> =
        tenants.iter().filter(|t| t.version.is_none()).collect();
    let rows: Vec<String> = tenants
        .iter()
        .map(|info| {
            format!(
                "{{\"tenant\": {}, \"ready\": {}, \"state\": {}, \"reason\": {}}}",
                json::escape(&info.tenant),
                info.version.is_some(),
                json::escape(info.state.name()),
                json::escape(&info.reason)
            )
        })
        .collect();
    let ready = degraded.is_empty();
    let status = if ready { 200 } else { 503 };
    Response::json(
        status,
        format!(
            "{{\"ready\": {ready}, \"degraded\": {}, \"tenants\": [{}]}}",
            degraded.len(),
            rows.join(", ")
        ),
    )
}

fn swap(ctx: &Ctx, request: &Request) -> Response {
    let doc = match json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("swap request: {e}"));
        }
    };
    let tenant = doc
        .get("tenant")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();
    let Some(path) = doc.get("path").and_then(Value::as_str) else {
        crate::obs::client_errors().inc();
        return Response::error(
            400,
            "swap request needs a \"path\" field (NMMODEL artifact)",
        );
    };
    let spec = match read_model(path) {
        Ok(spec) => spec,
        Err(e) => {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("cannot load model: {e}"));
        }
    };
    let model = ServeModel::compile(spec);
    let new_version = model.version();
    let patterns = model.num_patterns();
    let old_version = ctx.registry.swap(&tenant, model);
    crate::obs::swaps().inc();
    let old = match old_version {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"old_version\": {old}, \"new_version\": {new_version}, \
             \"patterns\": {patterns}}}",
            json::escape(&tenant)
        ),
    )
}

fn classify_route(ctx: &Ctx, request: &Request) -> Response {
    let doc = match json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("classify request: {e}"));
        }
    };
    let tenant = doc
        .get("tenant")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();
    let model = match ctx.registry.lookup(&tenant) {
        TenantLookup::Model(model) => model,
        TenantLookup::Unknown => {
            crate::obs::client_errors().inc();
            return Response::error(404, &format!("no model installed for tenant {tenant:?}"));
        }
        // Known tenant, no valid model yet (catalog had nothing adoptable):
        // degraded, not a client error — 503 says "retry later", and
        // /readyz carries the reason.
        TenantLookup::NoModel => {
            return Response::error(
                503,
                &format!("tenant {tenant:?} is degraded: no valid model available"),
            );
        }
    };
    let Some(raw) = doc.get("sequences").and_then(Value::as_arr) else {
        crate::obs::client_errors().inc();
        return Response::error(
            400,
            "classify request needs a \"sequences\" field: an array of symbol-name arrays",
        );
    };
    let mut sequences: Vec<Vec<Symbol>> = Vec::with_capacity(raw.len());
    for (i, seq) in raw.iter().enumerate() {
        let Some(elems) = seq.as_arr() else {
            crate::obs::client_errors().inc();
            return Response::error(400, &format!("sequence {i} is not an array"));
        };
        let mut encoded = Vec::with_capacity(elems.len());
        for (j, e) in elems.iter().enumerate() {
            let Some(name) = e.as_str() else {
                crate::obs::client_errors().inc();
                return Response::error(
                    400,
                    &format!("sequence {i} element {j} is not a symbol-name string"),
                );
            };
            match model.spec.alphabet.symbol(name) {
                Ok(sym) => encoded.push(sym),
                Err(_) => {
                    crate::obs::client_errors().inc();
                    return Response::error(
                        400,
                        &format!(
                            "sequence {i} element {j}: symbol {name:?} is not in the model's \
                             {}-symbol alphabet",
                            model.spec.alphabet.len()
                        ),
                    );
                }
            }
        }
        sequences.push(encoded);
    }
    // Admission runs *after* validation: a malformed request must not burn
    // a quota token, or N garbage posts could 429 a well-formed retry.
    match ctx
        .registry
        .admit(&tenant, ctx.start.elapsed().as_secs_f64())
    {
        Admission::Granted => {}
        Admission::UnknownTenant => {
            crate::obs::client_errors().inc();
            return Response::error(404, &format!("no model installed for tenant {tenant:?}"));
        }
        Admission::Throttled => {
            return Response::error(429, &format!("quota exhausted for tenant {tenant:?}"));
        }
    }
    let span = crate::obs::classify_seconds().span();
    let result = classify_with(&model, &sequences, ctx.kernel);
    span.finish();
    crate::obs::classifications().inc();
    crate::obs::sequences_classified().add(sequences.len() as u64);
    ctx.registry
        .record_classification(&tenant, sequences.len() as u64);
    // Feed the drift loop *after* the response is computed: sampling is
    // best-effort and must never affect what the client receives.
    if let Some(drift) = &ctx.drift {
        drift.ingest(&tenant, &sequences);
    }
    let mut patterns_json = Vec::with_capacity(model.num_patterns());
    for (p, fragment) in model.pattern_json.iter().enumerate() {
        let scores: Vec<String> = result
            .per_sequence
            .iter()
            .map(|row| json::num(row[p]))
            .collect();
        patterns_json.push(format!(
            "{{{fragment}, \"db_match\": {}, \"sequence_scores\": [{}]}}",
            json::num(result.db_match[p]),
            scores.join(", ")
        ));
    }
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"model_version\": {}, \"num_patterns\": {}, \
             \"num_sequences\": {}, \"patterns\": [{}]}}",
            json::escape(&tenant),
            result.model_version,
            model.num_patterns(),
            sequences.len(),
            patterns_json.join(", ")
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisemine_core::lattice::Border;
    use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
    use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel};

    fn ctx_with_model(quota: f64) -> Arc<Ctx> {
        let alphabet = Alphabet::synthetic(4);
        let matrix = CompatibilityMatrix::uniform_noise(4, 0.1).unwrap();
        let outcome = MineOutcome {
            frequent: vec![FrequentPattern {
                pattern: Pattern::contiguous(&[Symbol(0), Symbol(1)]).unwrap(),
                match_estimate: 0.5,
                provenance: Provenance::Verified,
            }],
            border: Border::default(),
            symbol_match: vec![0.4; 4],
            stats: MineStats::default(),
        };
        let registry = Arc::new(ModelRegistry::new(quota));
        registry.swap(
            "default",
            ServeModel::compile(PatternModel::from_outcome(
                &outcome, &alphabet, &matrix, 0.1, 3,
            )),
        );
        Arc::new(Ctx {
            registry,
            shutdown: Arc::new(AtomicBool::new(false)),
            start: Instant::now(),
            wake: None,
            drift: None,
            kernel: MatchKernel::Trie,
        })
    }

    fn post(ctx: &Ctx, path: &str, body: &str) -> Response {
        handle_request(
            ctx,
            &Request {
                method: "POST".to_string(),
                path: path.to_string(),
                body: body.to_string(),
                close: false,
            },
        )
    }

    fn get(ctx: &Ctx, path: &str) -> Response {
        handle_request(
            ctx,
            &Request {
                method: "GET".to_string(),
                path: path.to_string(),
                body: String::new(),
                close: false,
            },
        )
    }

    /// `/healthz` is liveness only; `/readyz` is readiness. A declared
    /// tenant without a model degrades readiness (503 + reason) while
    /// liveness stays green.
    #[test]
    fn readyz_distinguishes_liveness_from_readiness() {
        let ctx = ctx_with_model(0.0);
        assert_eq!(get(&ctx, "/healthz").status, 200);
        let r = get(&ctx, "/readyz");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"ready\": true"), "{}", r.body);

        ctx.registry.declare("pending");
        assert_eq!(get(&ctx, "/healthz").status, 200, "liveness must not dip");
        let r = get(&ctx, "/readyz");
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(r.body.contains("\"degraded\": 1"), "{}", r.body);
        assert!(r.body.contains("pending"), "{}", r.body);
    }

    /// A known-but-modelless tenant answers 503 (degraded, retry later),
    /// not 404 (no such tenant).
    #[test]
    fn degraded_tenant_classify_is_503_not_404() {
        let ctx = ctx_with_model(0.0);
        ctx.registry.declare("pending");
        let r = post(
            &ctx,
            "/v1/classify",
            r#"{"tenant": "pending", "sequences": [["d0"]]}"#,
        );
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(r.body.contains("degraded"), "{}", r.body);
    }

    /// `/admin/models` reports the per-tenant serving state.
    #[test]
    fn models_response_reports_serving_state() {
        let ctx = ctx_with_model(0.0);
        let r = get(&ctx, "/admin/models");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"state\": \"current\""), "{}", r.body);
        ctx.registry.set_state(
            "default",
            crate::registry::ServingState::Remining,
            "drift detected; re-mining",
        );
        let r = get(&ctx, "/admin/models");
        assert!(r.body.contains("\"state\": \"remining\""), "{}", r.body);
        assert!(r.body.contains("drift detected"), "{}", r.body);
    }

    #[test]
    fn classify_route_scores() {
        let ctx = ctx_with_model(0.0);
        let r = post(
            &ctx,
            "/v1/classify",
            r#"{"sequences": [["d0", "d1", "d2"]]}"#,
        );
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"model_version\": 3"), "{}", r.body);
        assert!(r.body.contains("\"db_match\""), "{}", r.body);
    }

    #[test]
    fn unknown_symbol_is_400() {
        let ctx = ctx_with_model(0.0);
        let r = post(&ctx, "/v1/classify", r#"{"sequences": [["nope"]]}"#);
        assert_eq!(r.status, 400);
        assert!(r.body.contains("nope"), "{}", r.body);
    }

    #[test]
    fn unknown_tenant_is_404() {
        let ctx = ctx_with_model(0.0);
        let r = post(
            &ctx,
            "/v1/classify",
            r#"{"tenant": "ghost", "sequences": []}"#,
        );
        assert_eq!(r.status, 404);
    }

    #[test]
    fn bad_json_is_400() {
        let ctx = ctx_with_model(0.0);
        let r = post(&ctx, "/v1/classify", "{nope");
        assert_eq!(r.status, 400);
    }

    #[test]
    fn unknown_route_is_404_and_wrong_method_is_405() {
        let ctx = ctx_with_model(0.0);
        assert_eq!(post(&ctx, "/nope", "").status, 404);
        assert_eq!(post(&ctx, "/metrics", "").status, 405);
    }

    /// Regression (PR 7): validation failures must not burn quota tokens.
    /// A burst-1 bucket survives any number of malformed posts and still
    /// admits the first well-formed request.
    #[test]
    fn malformed_requests_do_not_burn_quota() {
        let ctx = ctx_with_model(1.0); // 1 req/s, burst 1
        let full = ctx
            .registry
            .available_quota("default")
            .expect("tenant installed");
        let malformed = [
            "{nope",                              // bad JSON
            "{}",                                 // missing sequences
            r#"{"sequences": "x"}"#,              // sequences not an array
            r#"{"sequences": [["d0", "nope"]]}"#, // unknown symbol
            r#"{"sequences": [["d0"], "flat"]}"#, // element not an array
        ];
        for body in malformed {
            for _ in 0..3 {
                let r = post(&ctx, "/v1/classify", body);
                assert_eq!(r.status, 400, "{}", r.body);
            }
        }
        assert_eq!(
            ctx.registry.available_quota("default"),
            Some(full),
            "malformed posts burned quota tokens"
        );
        // The bucket is still full, so a well-formed retry is admitted…
        let r = post(&ctx, "/v1/classify", r#"{"sequences": [["d0", "d1"]]}"#);
        assert_eq!(r.status, 200, "{}", r.body);
        // …and only now is a token spent.
        let r = post(&ctx, "/v1/classify", r#"{"sequences": [["d0", "d1"]]}"#);
        assert_eq!(r.status, 429, "{}", r.body);
    }
}
