//! NMMODEL fault-injection sweep at the catalog boundary: every possible
//! truncation and every single-bit flip of an artifact must be rejected by
//! the loader AND ignored by the catalog supervisor — the last-good model
//! keeps serving, and a fresh tenant with only corrupt artifacts is
//! degraded, never served garbage.
//!
//! The loader-level sweeps in `model_io` prove `read_model` rejects the
//! corruption; this suite proves the *adoption path* built on top of it
//! inherits the guarantee: no corrupt byte pattern, at any offset, can
//! reach a registry through [`Catalog::sync`] or the supervisor thread.

use std::sync::Arc;
use std::time::Duration;

use noisemine_core::lattice::Border;
use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel, Symbol};
use noisemine_serve::{
    model_bytes, read_model, Catalog, CatalogSupervisor, ModelRegistry, ServeModel, TenantLookup,
};

fn sample_model(version: u64) -> PatternModel {
    let alphabet = Alphabet::synthetic(4);
    let matrix = CompatibilityMatrix::uniform_noise(4, 0.1).unwrap();
    let outcome = MineOutcome {
        frequent: vec![FrequentPattern {
            pattern: Pattern::contiguous(&[Symbol(0), Symbol(1)]).unwrap(),
            match_estimate: 0.5,
            provenance: Provenance::Verified,
        }],
        border: Border::default(),
        symbol_match: vec![0.4; 4],
        stats: MineStats::default(),
    };
    PatternModel::from_outcome(&outcome, &alphabet, &matrix, 0.1, version)
}

fn tmp_catalog(name: &str) -> Catalog {
    let root =
        std::env::temp_dir().join(format!("noisemine-catfault-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    Catalog::new(root)
}

/// A registry already serving last-good v1 for tenant `t`.
fn registry_with_v1() -> ModelRegistry {
    let registry = ModelRegistry::new(0.0);
    registry.swap("t", ServeModel::compile(sample_model(1)));
    registry
}

/// Truncation at every byte: each prefix of a valid v2 artifact is an
/// invalid file the loader rejects and the catalog never adopts — the
/// registry keeps serving v1 through every single sweep step.
#[test]
fn every_truncation_is_rejected_and_never_adopted() {
    let cat = tmp_catalog("trunc");
    cat.write("t", &sample_model(1)).unwrap();
    let registry = registry_with_v1();
    let v2 = cat.model_path("t", 2);
    let bytes = model_bytes(&sample_model(2));
    std::fs::create_dir_all(v2.parent().unwrap()).unwrap();
    for len in 0..bytes.len() {
        std::fs::write(&v2, &bytes[..len]).unwrap();
        assert!(
            read_model(&v2).is_err(),
            "truncation to {len}/{} bytes must not load",
            bytes.len()
        );
        let report = cat.sync(&registry);
        assert!(
            report.adopted.is_empty(),
            "truncated artifact ({len} bytes) was adopted"
        );
        assert_eq!(
            registry.current_version("t"),
            Some(1),
            "truncation to {len} bytes disturbed the serving model"
        );
    }
    // The intact artifact is adopted on the very next pass — the sweep
    // left no poisoned state behind.
    std::fs::write(&v2, &bytes).unwrap();
    let report = cat.sync(&registry);
    assert_eq!(report.adopted, vec![("t".to_string(), 2)]);
    assert_eq!(registry.current_version("t"), Some(2));
    std::fs::remove_dir_all(cat.root()).ok();
}

/// Single-bit flips at every position: the whole-file CRC32C detects every
/// 1-bit error, so no flipped artifact can load or be adopted.
#[test]
fn every_single_bit_flip_is_rejected_and_never_adopted() {
    let cat = tmp_catalog("bitflip");
    cat.write("t", &sample_model(1)).unwrap();
    let registry = registry_with_v1();
    let v2 = cat.model_path("t", 2);
    let bytes = model_bytes(&sample_model(2));
    std::fs::create_dir_all(v2.parent().unwrap()).unwrap();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            std::fs::write(&v2, &corrupt).unwrap();
            assert!(
                read_model(&v2).is_err(),
                "flip of byte {byte} bit {bit} must not load"
            );
            let report = cat.sync(&registry);
            assert!(
                report.adopted.is_empty(),
                "flipped artifact (byte {byte} bit {bit}) was adopted"
            );
            assert_eq!(
                registry.current_version("t"),
                Some(1),
                "flip of byte {byte} bit {bit} disturbed the serving model"
            );
        }
    }
    std::fs::remove_dir_all(cat.root()).ok();
}

/// A fresh tenant whose only artifacts are corrupt is declared degraded
/// (NoModel), never served garbage — for every truncation length.
#[test]
fn fresh_tenant_with_only_corrupt_artifacts_is_degraded() {
    let cat = tmp_catalog("freshcorrupt");
    let registry = ModelRegistry::new(0.0);
    let v1 = cat.model_path("fresh", 1);
    let bytes = model_bytes(&sample_model(1));
    std::fs::create_dir_all(v1.parent().unwrap()).unwrap();
    // Sample the truncation space (every 7th length keeps this case fast;
    // the exhaustive sweep lives above).
    for len in (0..bytes.len()).step_by(7) {
        std::fs::write(&v1, &bytes[..len]).unwrap();
        let report = cat.sync(&registry);
        assert!(report.adopted.is_empty());
        assert!(
            matches!(registry.lookup("fresh"), TenantLookup::NoModel),
            "corrupt-only tenant must be degraded, not served (len {len})"
        );
    }
    std::fs::remove_dir_all(cat.root()).ok();
}

/// The supervisor *thread* (not just the sync primitive) never adopts a
/// corrupt artifact: with a bit-flipped v2 on disk and the supervisor
/// scanning on a tight interval, the registry still serves v1 across many
/// scan cycles — and picks up a valid v3 as soon as it lands.
#[test]
fn supervisor_thread_keeps_last_good_across_scans() {
    let cat = tmp_catalog("supervisor");
    cat.write("t", &sample_model(1)).unwrap();
    let registry = Arc::new(registry_with_v1());
    let mut corrupt = model_bytes(&sample_model(2));
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    std::fs::write(cat.model_path("t", 2), &corrupt).unwrap();

    let supervisor =
        CatalogSupervisor::spawn(cat.clone(), Arc::clone(&registry), Duration::from_millis(5));
    // Many scan cycles over the corrupt artifact…
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(registry.current_version("t"), Some(1));

    // …then a valid v3 lands (crash-safe write) and is adopted without a
    // restart.
    cat.write("t", &sample_model(3)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while registry.current_version("t") != Some(3) {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never adopted the valid v3"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    supervisor.stop();
    std::fs::remove_dir_all(cat.root()).ok();
}
