//! Chaos suite for the self-healing drift loop: injected re-mine panics,
//! timeouts, and corrupt writes must never disturb serving — the last-good
//! model answers bit-identically to the offline kernel throughout, the
//! circuit breaker opens exactly on its failure budget and half-opens on
//! its cooldown schedule, and the loop recovers (re-mines, validates,
//! self-swaps) once the faults stop.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use noisemine_core::matching::{db_match_many, MemorySequences};
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{Alphabet, PatternModel, PatternSpace, Symbol};
use noisemine_datagen::{ProteinWorkload, ProteinWorkloadConfig};
use noisemine_seqdb::MemoryDb;
use noisemine_serve::json::{self, Value};
use noisemine_serve::{
    Catalog, DriftConfig, DriftFault, DriftSupervisor, ModelRegistry, ServeConfig, ServeModel,
    Server, ServingState,
};

/// The chaos fixture: a protein workload, an offline-mined model over its
/// clean regime, and noisy renderings for both regimes.
struct Fixture {
    workload: ProteinWorkload,
    model: PatternModel,
    clean: Vec<Vec<Symbol>>,
}

const INITIAL_VERSION: u64 = 5;

fn fixture() -> Fixture {
    let workload = ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences: 120,
        min_len: 15,
        max_len: 25,
        num_motifs: 2,
        min_motif_len: 4,
        max_motif_len: 5,
        occurrence: 0.6,
        seed: 21,
    });
    let (_, matrix) = workload.uniform_test_db(0.1, 1);
    let matrix = matrix.diagonal_normalized_clamped().unwrap();
    let (clean, _) = workload.uniform_test_db(0.05, 2);
    let config = MinerConfig {
        min_match: 0.25,
        sample_size: clean.len(),
        space: PatternSpace::new(0, 8).unwrap(),
        ..MinerConfig::default()
    };
    let db = MemoryDb::from_sequences(clean.clone());
    let outcome = mine(&db, &matrix, &config).expect("offline mine");
    assert!(!outcome.frequent.is_empty(), "fixture yields patterns");
    let model =
        PatternModel::from_outcome(&outcome, &workload.alphabet, &matrix, 0.25, INITIAL_VERSION);
    Fixture {
        workload,
        model,
        clean,
    }
}

fn tmp_catalog(name: &str) -> Catalog {
    let root = std::env::temp_dir().join(format!("noisemine-chaos-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    Catalog::new(root)
}

/// Asserts the serving guarantee: whatever model the registry hands out
/// right now classifies `batch` bit-identically to the offline
/// `db_match_many` over the same patterns and matrix. A torn or corrupt
/// model could not satisfy this.
fn assert_bit_identical(registry: &ModelRegistry, batch: &[Vec<Symbol>]) -> u64 {
    let model = registry.model("t").expect("tenant serves a model");
    let online = noisemine_serve::classify(&model, batch);
    let offline = db_match_many(
        &model.patterns,
        &MemorySequences(batch.to_vec()),
        &model.spec.matrix,
    );
    for (i, (a, b)) in online.db_match.iter().zip(&offline).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "pattern {i} diverged from offline kernel on v{}",
            model.version()
        );
    }
    model.version()
}

/// Feeds enough drifted traffic through the controller that the Chernoff
/// detector must fire (empirically 2 drifted renderings past a 120-clean
/// anchor; send 4 to leave margin).
fn feed_drifted(fx: &Fixture, controller: &noisemine_serve::DriftController) {
    for round in 0..4 {
        let (noisy, _) = fx.workload.uniform_test_db(0.35, 100 + round);
        controller.ingest("t", &noisy);
    }
}

/// The acceptance chaos scenario: panic, corrupt-write, panic → breaker
/// opens on its 3-failure budget; a half-open trial fails → re-opens; the
/// next trial succeeds → self-swap. Serving stays on last-good v5,
/// bit-identical, through every failure; the breaker schedule is verified
/// from the fault hook's own attempt timestamps.
#[test]
fn chaos_panics_and_corrupt_writes_never_disturb_serving() {
    let fx = fixture();
    let cat = tmp_catalog("chaos");
    let registry = Arc::new(ModelRegistry::new(0.0));
    registry.swap("t", ServeModel::compile(fx.model.clone()));

    let attempts: Arc<Mutex<Vec<(u32, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let hook_attempts = Arc::clone(&attempts);
    let cooldown = Duration::from_millis(500);
    let config = DriftConfig {
        interval: Duration::from_millis(10),
        min_sequences: 100,
        remine_timeout: Duration::from_secs(60),
        backoff_base: Duration::from_millis(30),
        backoff_max: Duration::from_millis(100),
        breaker_threshold: 3,
        breaker_cooldown: cooldown,
        sample_size: 400,
        max_len: 8,
        max_gap: 0,
        fault_hook: Some(Arc::new(move |tenant: &str, n: u32| {
            assert_eq!(tenant, "t");
            hook_attempts.lock().unwrap().push((n, Instant::now()));
            match n {
                // Three straight failures exhaust the breaker budget…
                1 | 3 => Some(DriftFault::Panic),
                2 => Some(DriftFault::CorruptWrite),
                // …the half-open trial fails too (re-open)…
                4 => Some(DriftFault::Panic),
                // …and the next trial is allowed to succeed.
                _ => None,
            }
        })),
        ..DriftConfig::default()
    };
    let (controller, supervisor) =
        DriftSupervisor::spawn(config, Arc::clone(&registry), Some(cat.clone()));

    // Clean traffic anchors the baseline…
    controller.ingest("t", &fx.clean);
    std::thread::sleep(Duration::from_millis(150));
    // …then drifted traffic trips the detector and the chaos begins.
    feed_drifted(&fx, &controller);

    // Poll until the self-swap lands, checking the serving guarantee and
    // collecting observed states the whole way.
    let batch: Vec<Vec<Symbol>> = fx.clean.iter().take(24).cloned().collect();
    let mut saw_circuit_open = false;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let version = assert_bit_identical(&registry, &batch);
        let info = registry
            .tenants()
            .into_iter()
            .find(|t| t.tenant == "t")
            .unwrap();
        if info.state == ServingState::CircuitOpen {
            saw_circuit_open = true;
            assert_eq!(
                version, INITIAL_VERSION,
                "breaker open yet serving already moved off last-good"
            );
            // First open carries the 3-failure budget; a re-open after the
            // failed half-open trial reports 4.
            assert!(
                info.reason.contains("consecutive re-mine failures"),
                "open-state reason should carry the failure count: {:?}",
                info.reason
            );
        }
        if version > INITIAL_VERSION {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drift loop never recovered; attempts: {:?}",
            attempts.lock().unwrap().len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    supervisor.stop();

    // The failure schedule: 4 failures then the successful 5th attempt.
    let log = attempts.lock().unwrap().clone();
    assert!(
        log.len() >= 5,
        "expected 5 attempts (4 injected failures + success), saw {log:?}"
    );
    assert_eq!(
        log.iter().map(|(n, _)| *n).collect::<Vec<_>>()[..5],
        [1, 2, 3, 4, 5]
    );
    assert!(saw_circuit_open, "breaker open state was never observable");
    // Half-open schedule: attempt 4 (the trial) waited out the cooldown
    // after attempt 3 opened the breaker, and attempt 5 waited out the
    // re-open. Timestamps are taken at attempt *start*, and the breaker
    // opens strictly after the failing attempt starts, so the gap between
    // consecutive attempts bounds the cooldown from below.
    let gap_4 = log[3].1.duration_since(log[2].1);
    let gap_5 = log[4].1.duration_since(log[3].1);
    assert!(
        gap_4 >= cooldown,
        "half-open trial ran {gap_4:?} after open; cooldown is {cooldown:?}"
    );
    assert!(
        gap_5 >= cooldown,
        "post-re-open trial ran {gap_5:?} after re-open; cooldown is {cooldown:?}"
    );

    // Recovery left a coherent world: the adopted version is on disk in
    // the catalog, validates, and matches what the registry serves.
    let final_version = registry.current_version("t").unwrap();
    assert!(final_version > INITIAL_VERSION);
    let (cat_version, cat_model) = cat.latest_valid("t").expect("artifact persisted");
    assert_eq!(cat_version, final_version);
    assert_eq!(cat_model.version, final_version);
    let info = registry
        .tenants()
        .into_iter()
        .find(|t| t.tenant == "t")
        .unwrap();
    assert_eq!(info.state, ServingState::Current);
    // And the corrupt-write attempt left its rejected artifact behind
    // without ever serving it.
    std::fs::remove_dir_all(cat.root()).ok();
}

/// A timeout storm: every re-mine stalls past the deadline. Failures
/// accumulate, the breaker opens, and serving never leaves the last-good
/// model — bit-identical the whole time.
#[test]
fn remine_timeout_storm_keeps_last_good_serving() {
    let fx = fixture();
    let registry = Arc::new(ModelRegistry::new(0.0));
    registry.swap("t", ServeModel::compile(fx.model.clone()));

    let config = DriftConfig {
        interval: Duration::from_millis(10),
        min_sequences: 100,
        remine_timeout: Duration::from_millis(40),
        backoff_base: Duration::from_millis(20),
        backoff_max: Duration::from_millis(50),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(300),
        sample_size: 400,
        max_len: 8,
        max_gap: 0,
        fault_hook: Some(Arc::new(|_: &str, _: u32| {
            Some(DriftFault::Stall(Duration::from_millis(400)))
        })),
        ..DriftConfig::default()
    };
    // No catalog: a timed-out mine must fail before any artifact I/O.
    let (controller, supervisor) = DriftSupervisor::spawn(config, Arc::clone(&registry), None);
    controller.ingest("t", &fx.clean);
    std::thread::sleep(Duration::from_millis(150));
    feed_drifted(&fx, &controller);

    // Two timeouts at ~40ms each plus backoff: the breaker must be open
    // well within two seconds, and stay open (300s cooldown).
    let batch: Vec<Vec<Symbol>> = fx.clean.iter().take(24).cloned().collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let version = assert_bit_identical(&registry, &batch);
        assert_eq!(version, INITIAL_VERSION, "a timed-out mine was adopted");
        let info = registry
            .tenants()
            .into_iter()
            .find(|t| t.tenant == "t")
            .unwrap();
        if info.state == ServingState::CircuitOpen {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never opened under the timeout storm"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Grace period: still serving last-good, still bit-identical, breaker
    // still open.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(assert_bit_identical(&registry, &batch), INITIAL_VERSION);
    supervisor.stop();
}

/// One raw HTTP/1.1 exchange over a real socket (`Connection: close`).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status line in {raw:?}"))
        .parse()
        .unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Renders sequences as the classify request's symbol-name JSON.
fn classify_body(tenant: &str, sequences: &[Vec<Symbol>], alphabet: &Alphabet) -> String {
    let seqs: Vec<String> = sequences
        .iter()
        .map(|seq| {
            let names: Vec<String> = seq
                .iter()
                .map(|&s| json::escape(alphabet.name(s).unwrap()))
                .collect();
            format!("[{}]", names.join(", "))
        })
        .collect();
    format!(
        "{{\"tenant\": {}, \"sequences\": [{}]}}",
        json::escape(tenant),
        seqs.join(", ")
    )
}

/// Extracts `(model_version, db_match per pattern)` from a classify
/// response.
fn db_match_from_response(body: &str) -> (u64, Vec<f64>) {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{body}"));
    let version = doc.get("model_version").and_then(Value::as_f64).unwrap() as u64;
    let patterns = doc.get("patterns").and_then(Value::as_arr).unwrap();
    let scores = patterns
        .iter()
        .map(|p| p.get("db_match").and_then(Value::as_f64).unwrap())
        .collect();
    (version, scores)
}

/// The end-to-end self-healing loop over a live HTTP server: classified
/// traffic drives the drift detector, the server re-mines and self-swaps
/// with no operator, every request throughout answers 200 with scores
/// bit-identical to the offline kernel for whichever model version served
/// it, and `/readyz` stays ready the whole time.
#[test]
fn http_traffic_drives_drift_remine_and_self_swap() {
    let fx = fixture();
    let cat = tmp_catalog("http");
    let registry = Arc::new(ModelRegistry::new(0.0));
    registry.swap("t", ServeModel::compile(fx.model.clone()));

    let drift_config = DriftConfig {
        interval: Duration::from_millis(10),
        min_sequences: 100,
        remine_timeout: Duration::from_secs(60),
        sample_size: 400,
        max_len: 8,
        max_gap: 0,
        ..DriftConfig::default()
    };
    let (controller, supervisor) =
        DriftSupervisor::spawn(drift_config, Arc::clone(&registry), Some(cat.clone()));
    let server = Server::start_with(
        &ServeConfig::default(),
        Arc::clone(&registry),
        Some(controller),
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Offline reference for the initial model over the probe batch.
    let batch: Vec<Vec<Symbol>> = fx.clean.iter().take(16).cloned().collect();
    let offline_v5 = db_match_many(
        &ServeModel::compile(fx.model.clone()).patterns,
        &MemorySequences(batch.clone()),
        &fx.model.matrix,
    );
    let probe = classify_body("t", &batch, &fx.workload.alphabet);

    // Clean traffic anchors the baseline (every response must be a 200 —
    // zero dropped requests is part of the contract).
    for chunk in fx.clean.chunks(30) {
        let body = classify_body("t", chunk, &fx.workload.alphabet);
        let (status, resp) = http(&addr, "POST", "/v1/classify", &body);
        assert_eq!(status, 200, "{resp}");
    }
    std::thread::sleep(Duration::from_millis(150));

    // Drifted traffic: keep classifying until the server swaps itself.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut swapped_version = None;
    'outer: for round in 0.. {
        let (noisy, _) = fx.workload.uniform_test_db(0.35, 100 + (round % 8));
        for chunk in noisy.chunks(30) {
            let body = classify_body("t", chunk, &fx.workload.alphabet);
            let (status, resp) = http(&addr, "POST", "/v1/classify", &body);
            assert_eq!(status, 200, "mid-drift request dropped: {resp}");
            // Probe with the fixed batch: whatever version answers must
            // match the offline kernel for that version, bit for bit.
            let (status, resp) = http(&addr, "POST", "/v1/classify", &probe);
            assert_eq!(status, 200, "{resp}");
            let (version, scores) = db_match_from_response(&resp);
            if version == INITIAL_VERSION {
                for (i, (a, b)) in scores.iter().zip(&offline_v5).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "v5 pattern {i} diverged");
                }
            } else {
                swapped_version = Some(version);
                break 'outer;
            }
            let (status, ready) = http(&addr, "GET", "/readyz", "");
            assert_eq!(status, 200, "server went unready mid-drift: {ready}");
        }
        assert!(
            Instant::now() < deadline,
            "server never self-swapped under drifted traffic"
        );
    }

    // The swapped model: strictly newer, persisted in the catalog, and the
    // HTTP scores it returns are bit-identical to the offline kernel run
    // over the artifact read back from disk. Drift may legitimately fire
    // again under the continuing drifted traffic, so resolve the artifact
    // for whichever version actually answers — every adopted version's
    // artifact stays on disk.
    let new_version = swapped_version.unwrap();
    assert!(new_version > INITIAL_VERSION);
    let (status, resp) = http(&addr, "POST", "/v1/classify", &probe);
    assert_eq!(status, 200, "{resp}");
    let (version, scores) = db_match_from_response(&resp);
    assert!(version >= new_version, "serving downgraded to v{version}");
    let cat_model =
        noisemine_serve::read_model(cat.model_path("t", version)).expect("artifact persisted");
    let offline_new = db_match_many(
        &ServeModel::compile(cat_model.clone()).patterns,
        &MemorySequences(batch.clone()),
        &cat_model.matrix,
    );
    for (i, (a, b)) in scores.iter().zip(&offline_new).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "v{version} pattern {i} diverged");
    }
    // /admin/models reports a version at least as new, in a drift-loop
    // state (current if quiesced, stale/remining if the detector has
    // already fired again — never circuit_open: no faults were injected).
    let (status, models) = http(&addr, "GET", "/admin/models", "");
    assert_eq!(status, 200);
    assert!(!models.contains("circuit_open"), "{models}");
    let doc = json::parse(&models).unwrap();
    let row = &doc.get("tenants").and_then(Value::as_arr).unwrap()[0];
    let reported = row.get("version").and_then(Value::as_f64).unwrap() as u64;
    assert!(reported >= new_version, "{models}");

    server.stop();
    server.join();
    supervisor.stop();
    std::fs::remove_dir_all(cat.root()).ok();
}

/// Without faults, the loop detects planted drift, re-mines once, writes
/// the artifact crash-safely, and self-swaps a strictly newer version —
/// and the adopted model classifies bit-identically to the offline kernel
/// over drifted traffic too.
#[test]
fn fault_free_drift_self_swaps_once() {
    let fx = fixture();
    let cat = tmp_catalog("healthy");
    let registry = Arc::new(ModelRegistry::new(0.0));
    registry.swap("t", ServeModel::compile(fx.model.clone()));

    let config = DriftConfig {
        interval: Duration::from_millis(10),
        min_sequences: 100,
        remine_timeout: Duration::from_secs(60),
        sample_size: 400,
        max_len: 8,
        max_gap: 0,
        ..DriftConfig::default()
    };
    let (controller, supervisor) =
        DriftSupervisor::spawn(config, Arc::clone(&registry), Some(cat.clone()));
    controller.ingest("t", &fx.clean);
    std::thread::sleep(Duration::from_millis(150));
    feed_drifted(&fx, &controller);

    let deadline = Instant::now() + Duration::from_secs(60);
    while registry.current_version("t") == Some(INITIAL_VERSION) {
        assert!(Instant::now() < deadline, "drift self-swap never happened");
        std::thread::sleep(Duration::from_millis(5));
    }
    supervisor.stop();

    let new_version = registry.current_version("t").unwrap();
    assert!(new_version > INITIAL_VERSION);
    // The new model serves drifted traffic bit-identically to offline.
    let (drifted, _) = fx.workload.uniform_test_db(0.35, 100);
    let batch: Vec<Vec<Symbol>> = drifted.into_iter().take(24).collect();
    assert_eq!(assert_bit_identical(&registry, &batch), new_version);
    // Crash-safety: the artifact on disk is the adopted model, validated.
    assert_eq!(cat.latest_valid("t").unwrap().0, new_version);
    std::fs::remove_dir_all(cat.root()).ok();
}
