//! End-to-end tests for the persistent-connection serve path: HTTP/1.1
//! keep-alive reuse (bit-identical to `Connection: close` responses),
//! pipelined back-to-back requests in one write, slow-loris idle-timeout
//! eviction, the requests-per-connection cap, and graceful drain under
//! load with zero dropped in-flight requests.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use noisemine_core::lattice::Border;
use noisemine_core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel, Symbol};
use noisemine_serve::{ModelRegistry, ServeConfig, ServeModel, Server};

/// A deterministic single-pattern model (no mining, so this suite is
/// fast) served for the `default` tenant.
fn start_server(config: &ServeConfig) -> Server {
    let alphabet = Alphabet::synthetic(6);
    let matrix = CompatibilityMatrix::uniform_noise(6, 0.12).unwrap();
    let outcome = MineOutcome {
        frequent: vec![
            FrequentPattern {
                pattern: Pattern::contiguous(&[Symbol(0), Symbol(1), Symbol(2)]).unwrap(),
                match_estimate: 0.5,
                provenance: Provenance::Verified,
            },
            FrequentPattern {
                pattern: Pattern::contiguous(&[Symbol(3), Symbol(4)]).unwrap(),
                match_estimate: 0.4,
                provenance: Provenance::Verified,
            },
        ],
        border: Border::default(),
        symbol_match: vec![0.4; 6],
        stats: MineStats::default(),
    };
    let registry = Arc::new(ModelRegistry::new(0.0));
    registry.swap(
        "default",
        ServeModel::compile(PatternModel::from_outcome(
            &outcome, &alphabet, &matrix, 0.1, 7,
        )),
    );
    Server::start(config, registry).expect("server starts")
}

const CLASSIFY_BODY: &str =
    r#"{"tenant": "default", "sequences": [["d0", "d1", "d2", "d3"], ["d4", "d5", "d0"]]}"#;

fn request_bytes(method: &str, path: &str, body: &str, close: bool) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{}\r\n{body}",
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
    )
    .into_bytes()
}

/// Reads exactly one framed response off `stream`, carrying over-read
/// bytes (the start of a later pipelined response) in `carry`; returns
/// `(status, headers, body)`.
fn read_one_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    let mut raw = std::mem::take(carry);
    let mut chunk = [0u8; 1024];
    let (head_end, content_length) = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).expect("UTF-8 head");
            let cl = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.trim()
                        .eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse::<usize>().expect("numeric length"))
                })
                .expect("response has Content-Length");
            break (pos, cl);
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response-head: {raw:?}");
        raw.extend_from_slice(&chunk[..n]);
    };
    while raw.len() < head_end + 4 + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-response-body");
        raw.extend_from_slice(&chunk[..n]);
    }
    let headers = String::from_utf8(raw[..head_end].to_vec()).unwrap();
    let body = String::from_utf8(raw[head_end + 4..head_end + 4 + content_length].to_vec())
        .expect("UTF-8 body");
    *carry = raw.split_off(head_end + 4 + content_length);
    let status = headers
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, headers, body)
}

#[test]
fn keepalive_responses_are_bit_identical_to_close_mode() {
    let server = start_server(&ServeConfig::default());
    let addr = server.addr();

    // Reference: one-shot Connection: close exchange.
    let mut one_shot = TcpStream::connect(addr).unwrap();
    let mut shot_carry = Vec::new();
    one_shot
        .write_all(&request_bytes("POST", "/v1/classify", CLASSIFY_BODY, true))
        .unwrap();
    let (status, headers, reference) = read_one_response(&mut one_shot, &mut shot_carry);
    assert_eq!(status, 200, "{reference}");
    assert!(headers.contains("Connection: close"), "{headers}");
    let mut rest = Vec::new();
    one_shot.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after a close-mode response");

    // Many sequential requests on ONE socket: every response arrives on
    // the same connection, marked keep-alive, with a byte-identical body.
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut carry = Vec::new();
    for i in 0..20 {
        conn.write_all(&request_bytes("POST", "/v1/classify", CLASSIFY_BODY, false))
            .unwrap();
        let (status, headers, body) = read_one_response(&mut conn, &mut carry);
        assert_eq!(status, 200, "request {i}");
        assert!(headers.contains("Connection: keep-alive"), "{headers}");
        assert_eq!(body, reference, "request {i} diverged from close mode");
    }
    // A final Connection: close request ends the exchange and the server
    // actually closes.
    conn.write_all(&request_bytes("POST", "/v1/classify", CLASSIFY_BODY, true))
        .unwrap();
    let (status, headers, body) = read_one_response(&mut conn, &mut carry);
    assert_eq!(status, 200);
    assert!(headers.contains("Connection: close"), "{headers}");
    assert_eq!(body, reference);
    assert!(carry.is_empty(), "stray bytes after the final response");
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    server.stop();
    server.join();
}

#[test]
fn pipelined_requests_in_one_write_all_answer_in_order() {
    let server = start_server(&ServeConfig::default());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let mut carry = Vec::new();

    // Reference body from a lone request.
    conn.write_all(&request_bytes("POST", "/v1/classify", CLASSIFY_BODY, false))
        .unwrap();
    let (_, _, reference) = read_one_response(&mut conn, &mut carry);

    // Three back-to-back requests in ONE write: two classifies around a
    // healthz, so ordering is observable.
    let mut batch = Vec::new();
    batch.extend(request_bytes("POST", "/v1/classify", CLASSIFY_BODY, false));
    batch.extend(request_bytes("GET", "/healthz", "", false));
    batch.extend(request_bytes("POST", "/v1/classify", CLASSIFY_BODY, false));
    conn.write_all(&batch).unwrap();

    let (s1, _, b1) = read_one_response(&mut conn, &mut carry);
    let (s2, _, b2) = read_one_response(&mut conn, &mut carry);
    let (s3, _, b3) = read_one_response(&mut conn, &mut carry);
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert_eq!(b1, reference);
    assert_eq!(b2, "{\"status\": \"ok\"}");
    assert_eq!(b3, reference);

    server.stop();
    server.join();
}

#[test]
fn slow_loris_connections_are_evicted_by_the_idle_timeout() {
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(250),
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let addr = server.addr();

    // A connection that never sends a byte parks in the event loop and is
    // evicted without ever occupying a worker.
    let mut silent = TcpStream::connect(addr).unwrap();
    // A connection that trickles half a request head and stalls hits the
    // worker-side read timeout.
    let mut trickler = TcpStream::connect(addr).unwrap();
    trickler.write_all(b"POST /v1/classify HT").unwrap();

    let t0 = Instant::now();
    for conn in [&mut silent, &mut trickler] {
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        // EOF (Ok with empty read-to-end) or a reset both count as closed.
        match conn.read_to_end(&mut buf) {
            Ok(_) => {}
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset | ErrorKind::UnexpectedEof
                ),
                "unexpected error kind: {e}"
            ),
        }
        assert!(buf.is_empty(), "no response owed to a request never sent");
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100),
        "evicted implausibly fast ({elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "idle eviction too slow ({elapsed:?})"
    );

    // The server stays fully functional for well-behaved clients.
    let mut ok = TcpStream::connect(addr).unwrap();
    ok.write_all(&request_bytes("POST", "/v1/classify", CLASSIFY_BODY, true))
        .unwrap();
    let (status, _, _) = read_one_response(&mut ok, &mut Vec::new());
    assert_eq!(status, 200);

    server.stop();
    server.join();
}

#[test]
fn requests_per_connection_cap_closes_politely() {
    let config = ServeConfig {
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let mut carry = Vec::new();

    for i in 1..=3 {
        conn.write_all(&request_bytes("GET", "/healthz", "", false))
            .unwrap();
        let (status, headers, _) = read_one_response(&mut conn, &mut carry);
        assert_eq!(status, 200);
        if i < 3 {
            assert!(headers.contains("Connection: keep-alive"), "{headers}");
        } else {
            // The capping response says close — the client is told, not
            // surprised by a dead socket.
            assert!(headers.contains("Connection: close"), "{headers}");
        }
    }
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection survived past the cap");

    server.stop();
    server.join();
}

#[test]
fn drain_under_load_drops_no_inflight_requests() {
    let config = ServeConfig {
        threads: 4,
        drain_grace: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let addr = server.addr();

    // Keep-alive clients hammering classify. Every exchange must be a
    // complete, well-formed response (`read_one_response` panics on a torn
    // one, so a dropped in-flight request fails the test loudly). Each
    // client runs until the drain ends its connection, which happens one
    // of two announced ways:
    //   - a 503 "draining" + `Connection: close` (the connection was
    //     parked when drain started and submitted another request), or
    //   - a normal 200 whose headers say `Connection: close` (a worker
    //     held the connection hot when drain started and finished the
    //     in-flight request before closing).
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                let mut carry = Vec::new();
                let mut completed = 0u32;
                loop {
                    conn.write_all(&request_bytes("POST", "/v1/classify", CLASSIFY_BODY, false))
                        .unwrap();
                    let (status, headers, body) = read_one_response(&mut conn, &mut carry);
                    match status {
                        200 => {
                            completed += 1;
                            if headers.contains("Connection: close") {
                                return (completed, false);
                            }
                        }
                        503 => {
                            assert!(headers.contains("Connection: close"), "{headers}");
                            assert!(body.contains("draining"), "{body}");
                            return (completed, true);
                        }
                        other => panic!("unexpected status {other}: {body}"),
                    }
                }
            })
        })
        .collect();

    // Let the clients get going, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    server.stop();

    for client in clients {
        let (completed, _saw_503) = client.join().expect("client panicked — dropped request");
        assert!(completed > 0, "client never completed a request");
    }

    server.join();
    // Post-join the listener is gone: new connections are refused (or the
    // probe connect succeeds into a dead backlog and the read fails —
    // either way no request is served).
    if let Ok(mut late) = TcpStream::connect(addr) {
        late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        late.write_all(&request_bytes("GET", "/healthz", "", true))
            .unwrap();
        let mut buf = Vec::new();
        let n = late.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server answered after join: {buf:?}");
    }
}
