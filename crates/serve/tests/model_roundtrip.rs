//! NMMODEL artifact round-trip and corruption tests over a *mined* model:
//! byte-stable writes, bit-flip rejection driven by the seqdb fault
//! harness, and bit-identical loaded-model classification.

use std::path::PathBuf;

use noisemine_core::matching::{db_match_many, MemorySequences};
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{Alphabet, CompatibilityMatrix, PatternModel, PatternSpace, Symbol};
use noisemine_datagen::{ProteinWorkload, ProteinWorkloadConfig};
use noisemine_seqdb::{FaultPlan, MemoryDb};
use noisemine_serve::{
    classify, decode_model_file, model_bytes, read_model, write_model, ServeModel,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("noisemine-serve-rt-{}-{name}", std::process::id()))
}

/// Mines a small noisy protein workload into a model plus the noisy
/// database it was mined from.
fn mined_model() -> (
    PatternModel,
    Vec<Vec<Symbol>>,
    Alphabet,
    CompatibilityMatrix,
) {
    let workload = ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences: 80,
        min_len: 15,
        max_len: 25,
        num_motifs: 2,
        min_motif_len: 4,
        max_motif_len: 5,
        occurrence: 0.6,
        seed: 7,
    });
    let (noisy, matrix) = workload.uniform_test_db(0.1, 9);
    let matrix = matrix.diagonal_normalized_clamped().unwrap();
    let config = MinerConfig {
        min_match: 0.25,
        sample_size: noisy.len(),
        space: PatternSpace::new(0, 8).unwrap(),
        ..MinerConfig::default()
    };
    let db = MemoryDb::from_sequences(noisy.clone());
    let outcome = mine(&db, &matrix, &config).expect("mining succeeds");
    assert!(!outcome.frequent.is_empty(), "workload yields patterns");
    let model = PatternModel::from_outcome(&outcome, &workload.alphabet, &matrix, 0.25, 42);
    (model, noisy, workload.alphabet.clone(), matrix)
}

#[test]
fn write_read_round_trip_is_byte_stable() {
    let (model, _, _, _) = mined_model();
    let a = tmp("a.nmmodel");
    let b = tmp("b.nmmodel");
    write_model(&a, &model).unwrap();
    write_model(&b, &model).unwrap();
    let bytes_a = std::fs::read(&a).unwrap();
    let bytes_b = std::fs::read(&b).unwrap();
    assert_eq!(bytes_a, bytes_b, "writes are deterministic");
    assert_eq!(bytes_a, model_bytes(&model), "file is exactly model_bytes");

    // Read back and re-encode: the payload survives bit-for-bit.
    let back = read_model(&a).unwrap();
    assert_eq!(back.version, 42);
    assert_eq!(
        back.encode(),
        model.encode(),
        "payload round-trips bit-exactly"
    );
    assert_eq!(
        model_bytes(&back),
        bytes_a,
        "re-written artifact is identical"
    );

    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn fault_plan_bit_flips_are_rejected_with_context() {
    let (model, _, _, _) = mined_model();
    let pristine = model_bytes(&model);
    let mut rejected = 0usize;
    for seed in 0..32u64 {
        // Reuse the seqdb fault harness to pick the corruption sites.
        let plan = FaultPlan::random(seed, pristine.len() as u64, 0, 3);
        let mut bytes = pristine.clone();
        if plan.corrupt_bytes(&mut bytes) == 0 || bytes == pristine {
            continue; // plan landed out of range — nothing corrupted
        }
        let err = decode_model_file(&bytes).expect_err("corruption must be detected");
        let msg = err.to_string();
        assert!(
            msg.contains("checksum") || msg.contains("magic") || msg.contains("truncated"),
            "error should say what failed: {msg}"
        );
        rejected += 1;
    }
    assert!(
        rejected >= 16,
        "most plans should corrupt in range ({rejected}/32)"
    );

    // Through the file path the error names the file.
    let path = tmp("corrupt.nmmodel");
    let mut bytes = pristine.clone();
    let flipped = FaultPlan::new().flip_bit(8 * 40 + 3);
    flipped.corrupt_bytes(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    let err = read_model(&path).expect_err("corrupt file rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("corrupt.nmmodel"),
        "error names the path: {msg}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_is_rejected() {
    let (model, _, _, _) = mined_model();
    let bytes = model_bytes(&model);
    // Deep truncation (below the fixed framing) names the cause outright.
    let err = decode_model_file(&bytes[..10]).expect_err("deep truncation detected");
    assert!(err.to_string().contains("truncated"), "{err}");
    // Mild truncation is caught by the whole-file checksum.
    let err = decode_model_file(&bytes[..bytes.len() - 5]).expect_err("truncation detected");
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn loaded_model_classifies_bit_identical_to_db_match_many() {
    let (model, noisy, _, matrix) = mined_model();
    let path = tmp("serve.nmmodel");
    write_model(&path, &model).unwrap();
    let serve = ServeModel::compile(read_model(&path).unwrap());
    std::fs::remove_file(&path).ok();

    let online = classify(&serve, &noisy);
    let offline = db_match_many(&serve.patterns, &MemorySequences(noisy.clone()), &matrix);
    assert_eq!(online.db_match.len(), offline.len());
    for (i, (a, b)) in online.db_match.iter().zip(&offline).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "pattern {i}: {a} vs {b}");
    }
}
