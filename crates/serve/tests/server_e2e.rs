//! End-to-end serving tests over real sockets: online classification that
//! is bit-identical to the offline miner, stream-drift-driven hot-swap
//! with zero dropped in-flight requests, admission control, and the
//! Prometheus metrics surface.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use noisemine_core::matching::{db_match_many, MemorySequences};
use noisemine_core::miner::MinerConfig;
use noisemine_core::{Alphabet, PatternSpace, Symbol};
use noisemine_datagen::{ProteinWorkload, ProteinWorkloadConfig};
use noisemine_seqdb::MemoryDb;
use noisemine_serve::json::{self, Value};
use noisemine_serve::{read_model, write_model, ModelRegistry, ServeConfig, ServeModel, Server};
use noisemine_stream::StreamState;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("noisemine-serve-e2e-{}-{name}", std::process::id()))
}

/// One raw HTTP/1.1 exchange over a real socket (`Connection: close`).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status line in {raw:?}"))
        .parse()
        .unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Renders sequences as the classify request's symbol-name JSON.
fn classify_body(tenant: &str, sequences: &[Vec<Symbol>], alphabet: &Alphabet) -> String {
    let seqs: Vec<String> = sequences
        .iter()
        .map(|seq| {
            let names: Vec<String> = seq
                .iter()
                .map(|&s| json::escape(alphabet.name(s).unwrap()))
                .collect();
            format!("[{}]", names.join(", "))
        })
        .collect();
    format!(
        "{{\"tenant\": {}, \"sequences\": [{}]}}",
        json::escape(tenant),
        seqs.join(", ")
    )
}

/// Extracts `db_match` per pattern (model order) from a classify response.
fn db_match_from_response(body: &str) -> (u64, Vec<f64>) {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{body}"));
    let version = doc.get("model_version").and_then(Value::as_f64).unwrap() as u64;
    let patterns = doc.get("patterns").and_then(Value::as_arr).unwrap();
    let scores = patterns
        .iter()
        .map(|p| p.get("db_match").and_then(Value::as_f64).unwrap())
        .collect();
    (version, scores)
}

struct StreamFixture {
    workload: ProteinWorkload,
    state: StreamState,
    ingested: Vec<Vec<Symbol>>,
}

/// A stream-mining fixture over the protein workload: ingest chunks, mine,
/// freeze models. Chunk 0 is the clean-ish regime; chunk 1 is drifted
/// (much noisier channel, same planted motifs).
fn stream_fixture() -> StreamFixture {
    let workload = ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences: 120,
        min_len: 15,
        max_len: 25,
        num_motifs: 2,
        min_motif_len: 4,
        max_motif_len: 5,
        occurrence: 0.6,
        seed: 21,
    });
    let (_, matrix) = workload.uniform_test_db(0.1, 1);
    let matrix = matrix.diagonal_normalized_clamped().unwrap();
    let config = MinerConfig {
        min_match: 0.25,
        sample_size: 400,
        space: PatternSpace::new(0, 8).unwrap(),
        ..MinerConfig::default()
    };
    let state = StreamState::new(matrix, config).unwrap();
    StreamFixture {
        workload,
        state,
        ingested: Vec::new(),
    }
}

impl StreamFixture {
    /// Ingests a noisy rendering of the standard database and re-mines,
    /// freezing the outcome as a model file at `path`. Returns the model
    /// version (the stream position, so successive mines are monotonic).
    fn ingest_and_freeze(&mut self, alpha: f64, seed: u64, path: &std::path::Path) -> u64 {
        let (noisy, _) = self.workload.uniform_test_db(alpha, seed);
        for seq in &noisy {
            self.state.ingest(seq);
        }
        self.ingested.extend(noisy);
        let db = MemoryDb::from_sequences(self.ingested.clone());
        // Drive the production path (drift check) but always freeze a
        // model — the first mine has no baseline to drift from.
        let outcome = match self.state.mine_if_drifted(&db).unwrap() {
            Some(o) => o,
            None => self.state.mine(&db).unwrap(),
        };
        let model = self.state.to_model(&outcome, &self.workload.alphabet);
        write_model(path, &model).unwrap();
        model.version
    }
}

#[test]
fn classify_over_socket_is_bit_identical_to_offline() {
    let mut fx = stream_fixture();
    let path = tmp("bitident.nmmodel");
    fx.ingest_and_freeze(0.1, 2, &path);

    let registry = Arc::new(ModelRegistry::new(0.0));
    registry.swap("default", ServeModel::compile(read_model(&path).unwrap()));
    let server = Server::start(&ServeConfig::default(), Arc::clone(&registry)).unwrap();
    let addr = server.addr().to_string();

    // A batch big enough to span several request-side reduction blocks.
    let batch: Vec<Vec<Symbol>> = fx.ingested.iter().take(40).cloned().collect();
    let body = classify_body("default", &batch, &fx.workload.alphabet);
    let (status, response) = http(&addr, "POST", "/v1/classify", &body);
    assert_eq!(status, 200, "{response}");
    let (_, online) = db_match_from_response(&response);

    let serve = ServeModel::compile(read_model(&path).unwrap());
    let offline = db_match_many(
        &serve.patterns,
        &MemorySequences(batch.clone()),
        &serve.spec.matrix,
    );
    assert_eq!(online.len(), offline.len());
    assert!(!online.is_empty(), "mined model has patterns");
    for (i, (a, b)) in online.iter().zip(&offline).enumerate() {
        // The JSON layer renders floats shortest-roundtrip, so the score
        // survives the socket bit-for-bit.
        assert_eq!(a.to_bits(), b.to_bits(), "pattern {i}: {a} vs {b}");
    }

    server.stop();
    server.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn drift_hot_swap_drops_no_inflight_requests() {
    let mut fx = stream_fixture();
    let v1_path = tmp("swap-v1.nmmodel");
    let v2_path = tmp("swap-v2.nmmodel");
    let v1 = fx.ingest_and_freeze(0.05, 3, &v1_path);

    let registry = Arc::new(ModelRegistry::new(0.0));
    registry.swap(
        "default",
        ServeModel::compile(read_model(&v1_path).unwrap()),
    );
    let server = Server::start(
        &ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            ..ServeConfig::default()
        },
        Arc::clone(&registry),
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Hammer the server from four clients while the swap happens.
    let batch: Vec<Vec<Symbol>> = fx.ingested.iter().take(8).cloned().collect();
    let body = classify_body("default", &batch, &fx.workload.alphabet);
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..25 {
                    let (status, response) = http(&addr, "POST", "/v1/classify", &body);
                    let version = if status == 200 {
                        db_match_from_response(&response).0
                    } else {
                        0
                    };
                    seen.push((status, version));
                }
                seen
            })
        })
        .collect();

    // Meanwhile: the stream drifts (much noisier channel), re-mine, and
    // hot-swap the frozen v2 through the admin API.
    let v2 = fx.ingest_and_freeze(0.35, 4, &v2_path);
    assert!(v2 > v1, "stream positions make versions monotonic");
    let swap_body = format!(
        "{{\"tenant\": \"default\", \"path\": {}}}",
        json::escape(v2_path.to_str().unwrap())
    );
    let (status, response) = http(&addr, "POST", "/admin/swap", &swap_body);
    assert_eq!(status, 200, "{response}");
    assert!(
        response.contains(&format!("\"old_version\": {v1}")),
        "{response}"
    );
    assert!(
        response.contains(&format!("\"new_version\": {v2}")),
        "{response}"
    );

    // Zero dropped in-flight: every hammered request got a 200, on one of
    // the two model versions — never an error, never a torn state.
    for client in clients {
        for (status, version) in client.join().unwrap() {
            assert_eq!(status, 200, "request dropped during hot-swap");
            assert!(
                version == v1 || version == v2,
                "impossible model version {version}"
            );
        }
    }

    // Post-swap, the active model is v2 and classification is
    // bit-identical to offline db_match_many over the v2 artifact.
    let (status, response) = http(&addr, "POST", "/v1/classify", &body);
    assert_eq!(status, 200, "{response}");
    let (version, online) = db_match_from_response(&response);
    assert_eq!(version, v2);
    let serve_v2 = ServeModel::compile(read_model(&v2_path).unwrap());
    let offline = db_match_many(
        &serve_v2.patterns,
        &MemorySequences(batch.clone()),
        &serve_v2.spec.matrix,
    );
    for (i, (a, b)) in online.iter().zip(&offline).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "pattern {i}: {a} vs {b}");
    }

    // The registry surface agrees.
    let (status, response) = http(&addr, "GET", "/admin/models", "");
    assert_eq!(status, 200);
    assert!(
        response.contains(&format!("\"version\": {v2}")),
        "{response}"
    );

    server.stop();
    server.join();
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
}

#[test]
fn quota_throttles_with_429_and_unknown_tenant_is_404() {
    let mut fx = stream_fixture();
    let path = tmp("quota.nmmodel");
    fx.ingest_and_freeze(0.1, 5, &path);

    // 1 request/second with burst 1: the second immediate request is over
    // quota.
    let registry = Arc::new(ModelRegistry::new(1.0));
    registry.swap("metered", ServeModel::compile(read_model(&path).unwrap()));
    let server = Server::start(&ServeConfig::default(), Arc::clone(&registry)).unwrap();
    let addr = server.addr().to_string();

    let batch: Vec<Vec<Symbol>> = fx.ingested.iter().take(2).cloned().collect();
    let body = classify_body("metered", &batch, &fx.workload.alphabet);
    let (status, _) = http(&addr, "POST", "/v1/classify", &body);
    assert_eq!(status, 200);
    let (status, response) = http(&addr, "POST", "/v1/classify", &body);
    assert_eq!(status, 429, "{response}");
    assert!(response.contains("quota exhausted"), "{response}");

    let stray = classify_body("nobody", &batch, &fx.workload.alphabet);
    let (status, response) = http(&addr, "POST", "/v1/classify", &stray);
    assert_eq!(status, 404, "{response}");

    // The throttle shows up on the tenant's Prometheus counters.
    let (status, metrics) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("serve_tenant_metered_throttled_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("serve_tenant_metered_requests_total"),
        "{metrics}"
    );
    assert!(metrics.contains("serve_throttled_total"), "{metrics}");
    assert!(metrics.contains("serve_classify_seconds"), "{metrics}");

    server.stop();
    server.join();
    std::fs::remove_file(&path).ok();
}
