//! Checkpoint/restore of the full engine state.
//!
//! A checkpoint captures everything [`StreamState`] holds — configuration,
//! per-symbol match sums, the reservoir (with the exact RNG state driving
//! its replacements), tracked border patterns with their online match sums,
//! and the drift anchor — so ingestion can resume after a restart and
//! produce *bit-identical* results to an uninterrupted run.
//!
//! ## On-disk format (all integers little-endian)
//!
//! ```text
//! magic            8 bytes  "NMSTRCK\0"
//! version          u32      currently 2
//! config           min_match f64, delta f64, sample_size u64,
//!                  counters_per_scan u64, max_gap u64, max_len u64,
//!                  spread_mode u8, probe_strategy u8, seed u64,
//!                  max_sample_patterns u64
//! matrix check     m u32, fnv-1a u64 over the entries' f64 bits
//! total            u64
//! match_sums       m × f64          (completed-block sums)
//! pending          m × f64          (current block's partial sums; v2+)
//! rng state        4 × u64          (xoshiro256** words)
//! reservoir        count u64, then per sequence: len u32 + len × u16
//! tracked          count u64, then per pattern: elems u32,
//!                  elems × u32 (0 = eternal, sym+1 otherwise), sum f64
//! drift anchor     u8 flag, then if set: total u64 + m × f64
//! ```
//!
//! The compatibility matrix itself is *not* stored — the caller supplies it
//! at restore time, and the checkpoint's fingerprint guards against mixing
//! state with a different matrix. The config's `threads` field is also not
//! stored: it is purely operational (results are bit-identical at any
//! thread count), so a restored engine starts with `threads = 0` (auto).
//! Writes go through a temporary file and a rename, so a crash
//! mid-checkpoint leaves the previous checkpoint intact.

use std::fs;
use std::path::Path;

use noisemine_core::border_collapse::ProbeStrategy;
use noisemine_core::chernoff::SpreadMode;
use noisemine_core::miner::MinerConfig;
use noisemine_core::{CompatibilityMatrix, Pattern, PatternElem, PatternSpace, Symbol};
use rand::rngs::StdRng;

use crate::error::{Error, Result};
use crate::state::{MineSnapshot, StreamState};

const MAGIC: &[u8; 8] = b"NMSTRCK\0";
const VERSION: u32 = 2;

/// FNV-1a over the bit patterns of every matrix entry, row-major.
fn matrix_fingerprint(matrix: &CompatibilityMatrix) -> u64 {
    let m = matrix.len();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..m {
        for j in 0..m {
            let bits = matrix.get(Symbol(i as u16), Symbol(j as u16)).to_bits();
            for b in bits.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Cursor over a checkpoint buffer with structural error reporting.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(Error::Corrupt(format!(
                "truncated while reading {what} at offset {}",
                self.pos
            )));
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Bounds a count field against the bytes actually left in the buffer,
    /// so a corrupted length cannot trigger a huge allocation.
    fn count(&mut self, min_record: usize, what: &str) -> Result<usize> {
        let n = self.u64(what)? as usize;
        let left = self.buf.len() - self.pos;
        if n.checked_mul(min_record).is_none_or(|need| need > left) {
            return Err(Error::Corrupt(format!(
                "{what} claims {n} records but only {left} bytes remain"
            )));
        }
        Ok(n)
    }
}

fn encode_pattern(out: &mut Vec<u8>, pattern: &Pattern) {
    put_u32(out, pattern.elems().len() as u32);
    for e in pattern.elems() {
        match e.symbol() {
            None => put_u32(out, 0),
            Some(Symbol(s)) => put_u32(out, s as u32 + 1),
        }
    }
}

fn decode_pattern(r: &mut Reader<'_>) -> Result<Pattern> {
    let len = r.u32("pattern length")? as usize;
    let mut elems = Vec::with_capacity(len);
    for _ in 0..len {
        let code = r.u32("pattern element")?;
        elems.push(match code {
            0 => PatternElem::Any,
            s if s <= u16::MAX as u32 + 1 => PatternElem::Sym(Symbol((s - 1) as u16)),
            s => {
                return Err(Error::Corrupt(format!(
                    "pattern element code {s} out of range"
                )));
            }
        });
    }
    Pattern::new(elems).map_err(|e| Error::Corrupt(format!("invalid tracked pattern: {e}")))
}

impl StreamState {
    /// Serializes the full engine state to `path`, atomically (temp file +
    /// rename).
    pub fn checkpoint(&self, path: &Path) -> Result<()> {
        let span = crate::obs::checkpoint_write_seconds().span();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);

        // Config.
        let cfg = &self.config;
        put_f64(&mut out, cfg.min_match);
        put_f64(&mut out, cfg.delta);
        put_u64(&mut out, cfg.sample_size as u64);
        put_u64(&mut out, cfg.counters_per_scan as u64);
        put_u64(&mut out, cfg.space.max_gap as u64);
        put_u64(&mut out, cfg.space.max_len as u64);
        out.push(match cfg.spread_mode {
            SpreadMode::Full => 0,
            SpreadMode::Restricted => 1,
        });
        out.push(match cfg.probe_strategy {
            ProbeStrategy::BorderCollapsing => 0,
            ProbeStrategy::LevelWise => 1,
        });
        put_u64(&mut out, cfg.seed);
        put_u64(&mut out, cfg.max_sample_patterns as u64);

        // Matrix fingerprint.
        put_u32(&mut out, self.matrix.len() as u32);
        put_u64(&mut out, matrix_fingerprint(&self.matrix));

        // Counters and RNG.
        put_u64(&mut out, self.total);
        for &s in &self.match_sums {
            put_f64(&mut out, s);
        }
        // The in-flight block partial is stored as-is (NOT folded into the
        // sums): a restored engine must resume mid-block so its addition
        // grouping — and therefore its results — stay bit-identical to an
        // uninterrupted run.
        for &p in &self.pending {
            put_f64(&mut out, p);
        }
        for w in self.rng.state() {
            put_u64(&mut out, w);
        }

        // Reservoir.
        put_u64(&mut out, self.reservoir.len() as u64);
        for seq in &self.reservoir {
            put_u32(&mut out, seq.len() as u32);
            for &Symbol(s) in seq {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }

        // Tracked borders.
        put_u64(&mut out, self.tracked.len() as u64);
        for (pattern, sum) in &self.tracked {
            encode_pattern(&mut out, pattern);
            put_f64(&mut out, *sum);
        }

        // Drift anchor.
        match &self.last_mine {
            None => out.push(0),
            Some(snap) => {
                out.push(1);
                put_u64(&mut out, snap.total);
                for &v in &snap.symbol_match {
                    put_f64(&mut out, v);
                }
            }
        }

        // Durability against torn writes: the payload is synced to the
        // temporary file *before* the rename, so after a crash the
        // destination holds either the previous checkpoint or this one in
        // full — never a partial payload.
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        span.finish();
        Ok(())
    }

    /// Rebuilds an engine from a checkpoint, resuming deterministically.
    ///
    /// `matrix` must be the same compatibility matrix the checkpointed
    /// engine was created with (validated by fingerprint).
    pub fn restore(path: &Path, matrix: CompatibilityMatrix) -> Result<Self> {
        let buf = fs::read(path)?;
        let mut r = Reader { buf: &buf, pos: 0 };

        if r.take(8, "magic")? != MAGIC {
            return Err(Error::Corrupt("bad magic".into()));
        }
        let version = r.u32("version")?;
        if version != VERSION {
            return Err(Error::Corrupt(format!(
                "unsupported checkpoint version {version} (expected {VERSION})"
            )));
        }

        // Config.
        let min_match = r.f64("min_match")?;
        let delta = r.f64("delta")?;
        let sample_size = r.u64("sample_size")? as usize;
        let counters_per_scan = r.u64("counters_per_scan")? as usize;
        let max_gap = r.u64("max_gap")? as usize;
        let max_len = r.u64("max_len")? as usize;
        let spread_mode = match r.u8("spread_mode")? {
            0 => SpreadMode::Full,
            1 => SpreadMode::Restricted,
            v => return Err(Error::Corrupt(format!("unknown spread mode {v}"))),
        };
        let probe_strategy = match r.u8("probe_strategy")? {
            0 => ProbeStrategy::BorderCollapsing,
            1 => ProbeStrategy::LevelWise,
            v => return Err(Error::Corrupt(format!("unknown probe strategy {v}"))),
        };
        let seed = r.u64("seed")?;
        let max_sample_patterns = r.u64("max_sample_patterns")? as usize;
        let space = PatternSpace::new(max_gap, max_len)
            .map_err(|e| Error::Corrupt(format!("invalid pattern space: {e}")))?;
        let config = MinerConfig {
            min_match,
            delta,
            sample_size,
            counters_per_scan,
            space,
            spread_mode,
            probe_strategy,
            seed,
            max_sample_patterns,
            // Operational only, never checkpointed: 0 = auto-detect.
            threads: 0,
            // Operational only, never checkpointed: the kernels are
            // bit-identical, so a restore always uses the default.
            match_kernel: noisemine_core::MatchKernel::default(),
            // Operational only, never checkpointed: the indexed and
            // unindexed scan paths are bit-identical.
            index: noisemine_core::IndexMode::default(),
        };
        config
            .validate()
            .map_err(|e| Error::Corrupt(format!("invalid checkpointed config: {e}")))?;

        // Matrix fingerprint.
        let m = r.u32("alphabet size")? as usize;
        if m != matrix.len() {
            return Err(Error::MatrixMismatch {
                expected: m,
                got: matrix.len(),
            });
        }
        let fp = r.u64("matrix fingerprint")?;
        if fp != matrix_fingerprint(&matrix) {
            return Err(Error::Corrupt(
                "matrix fingerprint mismatch: checkpoint was taken against \
                 different compatibility values"
                    .into(),
            ));
        }

        // Counters and RNG.
        let total = r.u64("total")?;
        let mut match_sums = Vec::with_capacity(m);
        for _ in 0..m {
            match_sums.push(r.f64("match sum")?);
        }
        let mut pending = Vec::with_capacity(m);
        for _ in 0..m {
            pending.push(r.f64("pending block sum")?);
        }
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = r.u64("rng state")?;
        }
        let rng = StdRng::from_state(words);

        // Reservoir.
        let count = r.count(4, "reservoir count")?;
        if count > sample_size {
            return Err(Error::Corrupt(format!(
                "reservoir holds {count} sequences, above the configured \
                 capacity {sample_size}"
            )));
        }
        let mut reservoir = Vec::with_capacity(count);
        for _ in 0..count {
            let len = r.u32("sequence length")? as usize;
            let raw = r.take(len * 2, "sequence symbols")?;
            reservoir.push(
                raw.chunks_exact(2)
                    .map(|c| Symbol(u16::from_le_bytes([c[0], c[1]])))
                    .collect(),
            );
        }

        // Tracked borders.
        let count = r.count(12, "tracked count")?;
        let mut tracked = Vec::with_capacity(count);
        for _ in 0..count {
            let pattern = decode_pattern(&mut r)?;
            let sum = r.f64("tracked sum")?;
            tracked.push((pattern, sum));
        }

        // Drift anchor.
        let last_mine = match r.u8("drift anchor flag")? {
            0 => None,
            1 => {
                let anchor_total = r.u64("drift anchor total")?;
                let mut symbol_match = Vec::with_capacity(m);
                for _ in 0..m {
                    symbol_match.push(r.f64("drift anchor match")?);
                }
                Some(MineSnapshot {
                    total: anchor_total,
                    symbol_match,
                })
            }
            v => return Err(Error::Corrupt(format!("unknown drift anchor flag {v}"))),
        };

        if r.pos != buf.len() {
            return Err(Error::Corrupt(format!(
                "{} trailing bytes after checkpoint payload",
                buf.len() - r.pos
            )));
        }

        Ok(StreamState::from_parts(
            matrix, config, total, match_sums, pending, rng, reservoir, tracked, last_mine,
        ))
    }
}
