//! Error types for the streaming engine.

use std::fmt;

use noisemine_core::ScanError;

/// Errors produced by the streaming engine.
#[derive(Debug)]
pub enum Error {
    /// An error bubbled up from the core miner (bad config, truncated
    /// phase 2, …).
    Core(noisemine_core::error::Error),
    /// The backing sequence store failed mid-scan (I/O fault, corrupt or
    /// truncated record) during ingestion or a re-mine.
    Scan(ScanError),
    /// An I/O error while writing or reading a checkpoint.
    Io(std::io::Error),
    /// A checkpoint file failed structural validation (bad magic, version,
    /// or inconsistent payload).
    Corrupt(String),
    /// The checkpoint was taken against a different compatibility matrix
    /// than the one supplied at restore time.
    MatrixMismatch {
        /// Alphabet size recorded in the checkpoint.
        expected: usize,
        /// Alphabet size of the supplied matrix.
        got: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Scan(e) => write!(f, "database scan failed: {e}"),
            Error::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            Error::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            Error::MatrixMismatch { expected, got } => write!(
                f,
                "checkpoint was taken against a different compatibility matrix \
                 (alphabet size {expected} recorded, {got} supplied)"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Scan(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<noisemine_core::error::Error> for Error {
    fn from(e: noisemine_core::error::Error) -> Self {
        // Unwrap scan failures so callers can match on the scan fault
        // directly instead of digging through the core error.
        match e {
            noisemine_core::error::Error::Scan(s) => Error::Scan(s),
            other => Error::Core(other),
        }
    }
}

impl From<ScanError> for Error {
    fn from(e: ScanError) -> Self {
        Error::Scan(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
