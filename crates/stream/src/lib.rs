//! # noisemine-stream
//!
//! Streaming ingestion + incremental mining for the paper's noisy-match
//! model (Yang, Wang, Yu, Han — SIGMOD 2002).
//!
//! The batch miner assumes the whole database is available for one phase-1
//! scan. This crate removes that assumption: sequences arrive one at a
//! time, and the engine maintains every phase-1 product incrementally —
//! per-symbol match sums (first-occurrence optimized) and a uniform
//! reservoir sample (Vitter's Algorithm R, since the total count is
//! unknown up front). Re-mining is cheap and triggered only when the
//! symbol-match estimates drift past the Chernoff deviation; phase 3 then
//! reuses the previously verified FQT/INFQT border patterns (their exact
//! matches are kept online) so only the patterns between the stale borders
//! get re-probed.
//!
//! The full engine state checkpoints to disk and restores bit-exactly:
//! after ingesting any prefix with any number of checkpoint/restore cycles
//! at arbitrary points, the mined frequent-pattern set equals a batch
//! [`mine`] over the same prefix with the same seed.
//!
//! [`mine`]: noisemine_core::miner::mine

mod checkpoint;
mod error;
pub(crate) mod obs;
mod state;

pub use error::{Error, Result};
pub use state::{MinePrep, MineSnapshot, StreamState};
