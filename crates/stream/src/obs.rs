//! Metric handles for the streaming engine's instrumentation: ingest
//! volume, drift-detector fires, re-mines with border reuse, and checkpoint
//! write latency.
//!
//! Handles are lazily registered in the process-wide
//! [`noisemine_obs::global`] registry and cached in `OnceLock`s; recording
//! is gated on [`noisemine_obs::enabled`] and never influences reservoir
//! contents, drift decisions, or mining output. Every metric is documented
//! in `docs/OBSERVABILITY.md`.

use noisemine_obs::{self as obs, Counter, Gauge, Histogram};
use std::sync::OnceLock;

macro_rules! counter {
    ($fn_name:ident, $name:literal, $help:literal, $unit:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static H: OnceLock<Counter> = OnceLock::new();
            H.get_or_init(|| obs::counter($name, $help, $unit))
        }
    };
}

macro_rules! gauge {
    ($fn_name:ident, $name:literal, $help:literal, $unit:literal) => {
        pub(crate) fn $fn_name() -> &'static Gauge {
            static H: OnceLock<Gauge> = OnceLock::new();
            H.get_or_init(|| obs::gauge($name, $help, $unit))
        }
    };
}

counter!(
    sequences_ingested,
    "stream_sequences_ingested_total",
    "Sequences ingested into the incremental engine (online Algorithm 4.1 updates)",
    "sequences"
);
counter!(
    remines,
    "stream_remines_total",
    "Re-mines executed (phase 2 on the reservoir + phase 3 against the prefix)",
    "runs"
);
counter!(
    drift_fires,
    "stream_drift_fires_total",
    "Drift checks that found a symbol match beyond the Chernoff deviation since the last mine",
    "fires"
);
counter!(
    border_reuse_hits,
    "stream_border_reuse_hits_total",
    "Tracked border patterns whose online exact matches were reused by a re-mine (zero-scan collapses)",
    "patterns"
);
gauge!(
    tracked_patterns,
    "stream_tracked_patterns",
    "Border patterns whose exact matches are currently maintained online",
    "patterns"
);

/// Checkpoint write latency (serialize + atomic replace).
pub(crate) fn checkpoint_write_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        obs::histogram(
            "stream_checkpoint_write_seconds",
            "Wall-clock time to serialize and atomically persist one engine checkpoint",
            "seconds",
            obs::duration_buckets(),
        )
    })
}
