//! The incremental mining engine: online phase-1 state plus drift-triggered
//! re-mining.
//!
//! [`StreamState`] maintains, per appended sequence and without rescanning
//! anything:
//!
//! - the **per-symbol match sums** of Algorithm 4.1 (first-occurrence
//!   optimized via [`SymbolMatchScratch`]), so the phase-1 symbol matches of
//!   the whole ingested prefix are always available as `sums / total`.
//!   Sums are accumulated in [`SCAN_BLOCK_SIZE`]-sequence blocks — the same
//!   grouping the batch miner's block scan uses — so incremental ingestion
//!   reproduces batch phase 1 **bit for bit** despite floating-point
//!   addition being non-associative;
//! - a **uniform reservoir sample** (Vitter's Algorithm R) of up to
//!   `sample_size` sequences — the streaming replacement for the paper's
//!   sequential sampler, which needs the total count `N` up front;
//! - **exact match sums for tracked patterns**: the FQT/INFQT border
//!   patterns probed by the last phase 3. Keeping their exact matches
//!   online means the next re-mine collapses their region of the ambiguous
//!   space with *zero* database scans ([`collapse_with_known`]); only
//!   patterns between the stale borders are re-probed.
//!
//! A re-mine is triggered when the per-symbol match estimates drift by more
//! than the Chernoff deviation `ε = sqrt(R²·ln(1/δ) / 2n)` since the last
//! mine — the same bound phase 2 uses for classification, so a smaller
//! movement provably cannot flip a confident label.
//!
//! [`collapse_with_known`]: noisemine_core::border_collapse::collapse_with_known

use noisemine_core::border_collapse::CollapseResult;
use noisemine_core::chernoff::epsilon;
use noisemine_core::matching::{sequence_match, SequenceScan, SymbolMatchScratch};
use noisemine_core::miner::{mine_from_phase1_with_known, MineOutcome, MinerConfig, Phase1Output};
use noisemine_core::parallel::SCAN_BLOCK_SIZE;
use noisemine_core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Result;

/// Phase-1 snapshot taken at the last re-mine, for drift detection.
#[derive(Debug, Clone, PartialEq)]
pub struct MineSnapshot {
    /// Sequences ingested when the snapshot was taken.
    pub total: u64,
    /// Per-symbol matches at that point.
    pub symbol_match: Vec<f64>,
}

/// Everything a re-mine needs, detached from the engine.
///
/// [`StreamState::prepare_mine`] snapshots the engine's phase-1 view,
/// tracked exact matches, matrix, and configuration into one owned value,
/// so the expensive mining step ([`mine_from_phase1_with_known`]) can run
/// on another thread — panic-isolated and time-bounded — without borrowing
/// the engine. On success the caller feeds the result back through
/// [`StreamState::complete_mine`]; on failure (panic, timeout, error) the
/// engine was never touched and simply retries later. [`StreamState::mine`]
/// itself is the prepare → mine → complete composition, so a supervised
/// out-of-band mine is bit-identical to an in-place one.
#[derive(Debug, Clone)]
pub struct MinePrep {
    /// Phase-1 view (normalized symbol matches + reservoir sample).
    pub p1: Phase1Output,
    /// Tracked border patterns with normalized exact matches.
    pub known: Vec<(Pattern, f64)>,
    /// The engine's compatibility matrix.
    pub matrix: CompatibilityMatrix,
    /// The engine's miner configuration.
    pub config: MinerConfig,
    /// Stream position the snapshot was taken at.
    pub total: u64,
}

/// Incremental mining engine over an append-only sequence stream.
///
/// The engine owns everything phase 1 produces (symbol matches, sample) and
/// everything phase 3 learned (tracked border patterns with exact match
/// sums); the full ingested prefix itself lives with the caller (typically
/// an appendable [`DiskDb`] log), and is passed in only when
/// [`StreamState::mine`] needs phase-3 scans.
///
/// [`DiskDb`]: noisemine_seqdb::DiskDb
#[derive(Debug)]
pub struct StreamState {
    pub(crate) matrix: CompatibilityMatrix,
    pub(crate) config: MinerConfig,
    /// Sequences ingested so far.
    pub(crate) total: u64,
    /// Unnormalized per-symbol match accumulators over *completed*
    /// [`SCAN_BLOCK_SIZE`]-sequence blocks (`match · total`, minus the
    /// pending partial below).
    pub(crate) match_sums: Vec<f64>,
    /// Per-symbol partial sums of the current (incomplete) block; flushed
    /// into `match_sums` every [`SCAN_BLOCK_SIZE`] sequences so the
    /// grouping of additions matches the batch miner's block scan exactly.
    pub(crate) pending: Vec<f64>,
    /// RNG driving reservoir replacement; checkpointed exactly so a
    /// restored engine draws the same replacements as an uninterrupted one.
    pub(crate) rng: StdRng,
    /// The uniform sample (capacity `config.sample_size`).
    pub(crate) reservoir: Vec<Vec<Symbol>>,
    /// `(pattern, unnormalized exact match sum)` for the borders probed by
    /// the last phase 3.
    pub(crate) tracked: Vec<(Pattern, f64)>,
    /// Phase-1 snapshot at the last re-mine.
    pub(crate) last_mine: Option<MineSnapshot>,
    scratch: SymbolMatchScratch,
}

impl StreamState {
    /// Creates an empty engine for the given compatibility matrix.
    ///
    /// `config.sample_size` bounds the reservoir; `config.seed` seeds the
    /// reservoir RNG, making the whole engine deterministic.
    pub fn new(matrix: CompatibilityMatrix, config: MinerConfig) -> Result<Self> {
        config.validate()?;
        let m = matrix.len();
        Ok(Self {
            config: config.clone(),
            total: 0,
            match_sums: vec![0.0; m],
            pending: vec![0.0; m],
            rng: StdRng::seed_from_u64(config.seed),
            reservoir: Vec::with_capacity(config.sample_size),
            tracked: Vec::new(),
            last_mine: None,
            scratch: SymbolMatchScratch::new(m),
            matrix,
        })
    }

    /// Rebuilds an engine from checkpointed parts (used by restore).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        matrix: CompatibilityMatrix,
        config: MinerConfig,
        total: u64,
        match_sums: Vec<f64>,
        pending: Vec<f64>,
        rng: StdRng,
        reservoir: Vec<Vec<Symbol>>,
        tracked: Vec<(Pattern, f64)>,
        last_mine: Option<MineSnapshot>,
    ) -> Self {
        let scratch = SymbolMatchScratch::new(matrix.len());
        Self {
            matrix,
            config,
            total,
            match_sums,
            pending,
            rng,
            reservoir,
            tracked,
            last_mine,
            scratch,
        }
    }

    /// Ingests one appended sequence: O(len · m) symbol-match update, O(1)
    /// expected reservoir update, one match evaluation per tracked pattern.
    pub fn ingest(&mut self, seq: &[Symbol]) {
        let per_seq = self.scratch.sequence(seq, &self.matrix);
        for (acc, &v) in self.pending.iter_mut().zip(per_seq) {
            *acc += v;
        }
        for (pattern, sum) in &mut self.tracked {
            *sum += sequence_match(pattern, seq, &self.matrix);
        }
        // Algorithm R: the (total+1)-th sequence replaces a random slot
        // with probability capacity / (total+1).
        let capacity = self.config.sample_size;
        if self.reservoir.len() < capacity {
            self.reservoir.push(seq.to_vec());
        } else if capacity > 0 {
            let k = self.rng.gen_range(0..=self.total as usize);
            if k < capacity {
                self.reservoir[k] = seq.to_vec();
            }
        }
        self.total += 1;
        crate::obs::sequences_ingested().inc();
        // Block boundary: fold the completed block's partial into the grand
        // sums, mirroring the batch scan's per-block reduction order.
        if self.total % SCAN_BLOCK_SIZE as u64 == 0 {
            for (acc, p) in self.match_sums.iter_mut().zip(&mut self.pending) {
                *acc += *p;
                *p = 0.0;
            }
        }
    }

    /// Ingests a batch of sequences in order.
    pub fn ingest_all<I, T>(&mut self, seqs: I)
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[Symbol]>,
    {
        for s in seqs {
            self.ingest(s.as_ref());
        }
    }

    /// Ingests from a sequence store through its *fallible* scan path,
    /// skipping the first `skip` sequences (those already ingested).
    /// Returns the number of sequences ingested.
    ///
    /// On `Err` the sequences visited before the fault have already been
    /// ingested; `total_seen() − skip` tells how far the scan got, and the
    /// caller can resume with a fresh `ingest_from(db, state.total_seen())`
    /// once the store recovers.
    pub fn ingest_from<S: SequenceScan + ?Sized>(&mut self, db: &S, skip: u64) -> Result<u64> {
        let mut seen = 0u64;
        let mut ingested = 0u64;
        let state = &mut *self;
        db.try_scan(&mut |_id, seq| {
            if seen >= skip {
                state.ingest(seq);
                ingested += 1;
            }
            seen += 1;
        })?;
        Ok(ingested)
    }

    /// Number of sequences ingested so far.
    pub fn total_seen(&self) -> u64 {
        self.total
    }

    /// The current reservoir sample.
    pub fn sample(&self) -> &[Vec<Symbol>] {
        &self.reservoir
    }

    /// The engine's miner configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The engine's compatibility matrix.
    pub fn matrix(&self) -> &CompatibilityMatrix {
        &self.matrix
    }

    /// Patterns whose exact matches are maintained online (last borders).
    pub fn tracked_patterns(&self) -> impl Iterator<Item = &Pattern> {
        self.tracked.iter().map(|(p, _)| p)
    }

    /// Per-symbol matches of the ingested prefix (phase-1 output).
    pub fn symbol_match(&self) -> Vec<f64> {
        if self.total == 0 {
            return self.match_sums.clone();
        }
        let n = self.total as f64;
        // The tail block's partial joins the reduction last, exactly where
        // the batch scan adds its final (short) block.
        self.match_sums
            .iter()
            .zip(&self.pending)
            .map(|(&s, &p)| (s + p) / n)
            .collect()
    }

    /// The phase-1 view of the ingested prefix: normalized symbol matches
    /// plus the reservoir sample.
    pub fn phase1_output(&self) -> Phase1Output {
        Phase1Output {
            symbol_match: self.symbol_match(),
            sample: self.reservoir.clone(),
        }
    }

    /// Tracked patterns with normalized exact matches over the prefix.
    pub fn known_matches(&self) -> Vec<(Pattern, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let n = self.total as f64;
        self.tracked
            .iter()
            .map(|(p, s)| (p.clone(), s / n))
            .collect()
    }

    /// Per-symbol drift since the last mine, as `|current − last|`.
    pub fn drift(&self) -> Vec<f64> {
        match &self.last_mine {
            None => self.symbol_match(),
            Some(snap) => self
                .symbol_match()
                .iter()
                .zip(&snap.symbol_match)
                .map(|(c, l)| (c - l).abs())
                .collect(),
        }
    }

    /// Whether some symbol's match estimate has moved by more than the
    /// Chernoff deviation `ε = sqrt(R²·ln(1/δ) / 2n)` since the last mine
    /// (`R` = the symbol's own match, its restricted spread as a
    /// 1-pattern; `n` = the current prefix length). Until the first mine,
    /// any non-empty prefix counts as drifted.
    pub fn drift_exceeded(&self) -> bool {
        let fired = self.drift_exceeded_inner();
        if fired {
            crate::obs::drift_fires().inc();
        }
        fired
    }

    fn drift_exceeded_inner(&self) -> bool {
        let Some(snap) = &self.last_mine else {
            return self.total > 0;
        };
        if self.total == snap.total {
            return false;
        }
        let n = self.total as usize;
        let delta = self.config.delta;
        self.symbol_match()
            .iter()
            .zip(&snap.symbol_match)
            .any(|(c, l)| {
                let spread = c.max(*l).min(1.0);
                if spread <= 0.0 {
                    return false;
                }
                (c - l).abs() > epsilon(spread, n, delta)
            })
    }

    /// Re-mines the ingested prefix.
    ///
    /// Runs phase 2 on the reservoir and phase 3 against `db` — which must
    /// scan exactly the sequences ingested so far, in ingestion order.
    /// Tracked border patterns contribute their online exact matches, so
    /// only ambiguous patterns between the stale FQT/INFQT borders cost
    /// scans. Afterwards the tracked set is replaced by the borders this
    /// mine probed, and the drift detector is re-anchored.
    pub fn mine<S: SequenceScan + ?Sized>(&mut self, db: &S) -> Result<MineOutcome> {
        let prep = self.prepare_mine();
        let (outcome, p3) =
            mine_from_phase1_with_known(db, &prep.matrix, &prep.config, &prep.p1, &prep.known)?;
        self.complete_mine(&prep, &p3);
        Ok(outcome)
    }

    /// Snapshots everything a re-mine needs (see [`MinePrep`]). The caller
    /// runs [`mine_from_phase1_with_known`] over the snapshot — possibly on
    /// another thread, under a panic guard and a deadline — and applies the
    /// result with [`Self::complete_mine`].
    pub fn prepare_mine(&self) -> MinePrep {
        MinePrep {
            p1: self.phase1_output(),
            known: self.known_matches(),
            matrix: self.matrix.clone(),
            config: self.config.clone(),
            total: self.total,
        }
    }

    /// Applies a finished re-mine: adopts the borders phase 3 probed as the
    /// new tracked set and re-anchors the drift detector at the snapshot.
    ///
    /// Exactness of the tracked sums requires that nothing was ingested
    /// between [`Self::prepare_mine`] and this call (the serve-layer drift
    /// loop runs both from one thread, so the window is empty by
    /// construction). A supervised mine that fails never reaches this
    /// point, leaving the engine exactly as prepared — drift stays fired
    /// and the caller retries.
    pub fn complete_mine(&mut self, prep: &MinePrep, p3: &CollapseResult) {
        debug_assert_eq!(
            prep.total, self.total,
            "sequences were ingested between prepare_mine and complete_mine"
        );
        crate::obs::remines().inc();
        crate::obs::border_reuse_hits().add(p3.known_applied as u64);
        self.adopt_borders(p3);
        crate::obs::tracked_patterns().set(self.tracked.len() as f64);
        self.last_mine = Some(MineSnapshot {
            total: prep.total,
            symbol_match: prep.p1.symbol_match.clone(),
        });
    }

    /// Re-anchors the drift detector at the current prefix **without**
    /// mining: subsequent [`Self::drift_exceeded`] calls measure movement
    /// relative to now. Used by the serve-layer drift loop to calibrate a
    /// freshly attached traffic stream against the model already serving,
    /// so the first few requests don't count as "drift" from an empty
    /// baseline.
    pub fn anchor(&mut self) {
        self.last_mine = Some(MineSnapshot {
            total: self.total,
            symbol_match: self.symbol_match(),
        });
    }

    /// Convenience driver: re-mines only if the drift bound is exceeded.
    /// Returns `None` when the current borders are still trustworthy.
    pub fn mine_if_drifted<S: SequenceScan + ?Sized>(
        &mut self,
        db: &S,
    ) -> Result<Option<MineOutcome>> {
        if self.drift_exceeded() {
            self.mine(db).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Freezes a mining outcome into a versioned [`PatternModel`] for the
    /// online serving layer — the drift→swap hook.
    ///
    /// The model's version is the stream position ([`Self::total_seen`])
    /// at freeze time, so successive drift-triggered re-mines yield
    /// strictly increasing versions and a serving registry can hot-swap
    /// monotonically. The matrix and `min_match` are the engine's own.
    pub fn to_model(&self, outcome: &MineOutcome, alphabet: &Alphabet) -> PatternModel {
        PatternModel::from_outcome(
            outcome,
            alphabet,
            &self.matrix,
            self.config.min_match,
            self.total_seen(),
        )
    }

    /// Replaces the tracked set with every pattern the given phase-3 run
    /// verified exactly (probed, or pre-verified and re-applied), seeding
    /// each with `match · total` so future ingests keep the sum exact.
    fn adopt_borders(&mut self, p3: &CollapseResult) {
        let n = self.total as f64;
        self.tracked = p3
            .frequent
            .iter()
            .chain(&p3.infrequent)
            .filter_map(|r| r.match_value.map(|v| (r.pattern.clone(), v * n)))
            .collect();
    }
}
