//! Robustness of checkpoint restore against damaged files: every byte-level
//! truncation and targeted bit flips must surface as typed errors — never a
//! panic, never a silently wrong engine.

use noisemine_core::miner::MinerConfig;
use noisemine_core::{CompatibilityMatrix, PatternSpace, Symbol};
use noisemine_stream::{Error, StreamState};

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("noisemine-ckpt-rob-{}-{name}", std::process::id()))
}

fn config() -> MinerConfig {
    MinerConfig {
        min_match: 0.2,
        delta: 0.05,
        sample_size: 8,
        counters_per_scan: 10,
        space: PatternSpace::contiguous(3),
        seed: 42,
        ..MinerConfig::default()
    }
}

/// A small engine with non-trivial state: sequences ingested, a populated
/// reservoir, and (via one mine over the reservoir) tracked patterns plus a
/// drift anchor.
fn engine_with_state() -> StreamState {
    let matrix = CompatibilityMatrix::paper_figure2();
    let mut engine = StreamState::new(matrix, config()).unwrap();
    let seqs: Vec<Vec<Symbol>> = (0..20u16)
        .map(|i| (0..6).map(|j| Symbol((i + j) % 5)).collect())
        .collect();
    engine.ingest_all(&seqs);
    let db = noisemine_core::matching::MemorySequences(seqs);
    engine.mine(&db).unwrap();
    engine
}

/// Truncation sweep: restoring any strict prefix of a valid checkpoint must
/// return a structural error. This is the torn-write model — a crash left
/// only the first `len` bytes.
#[test]
fn every_truncation_is_rejected() {
    let engine = engine_with_state();
    let full_path = tmp_path("trunc-full");
    engine.checkpoint(&full_path).unwrap();
    let bytes = std::fs::read(&full_path).unwrap();
    std::fs::remove_file(&full_path).unwrap();
    assert!(bytes.len() > 100, "checkpoint suspiciously small");

    let matrix = CompatibilityMatrix::paper_figure2();
    let path = tmp_path("trunc-cut");
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let result = StreamState::restore(&path, matrix.clone());
        assert!(
            matches!(result, Err(Error::Corrupt(_))),
            "prefix of {len}/{} bytes must fail structurally",
            bytes.len()
        );
    }
    std::fs::remove_file(&path).unwrap();
}

/// Flipping any bit of the stored matrix fingerprint must be caught by the
/// fingerprint comparison (or, for the alphabet-size field, the size
/// check) — state from one matrix can never silently attach to another.
#[test]
fn matrix_fingerprint_bit_flips_are_rejected() {
    let engine = engine_with_state();
    let path = tmp_path("fp-full");
    engine.checkpoint(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // Layout: magic(8) + version(4) + config(8+8+8+8+8+8+1+1+8+8 = 66
    // bytes) + alphabet size u32 + fingerprint u64.
    let fp_region = 8 + 4 + 66;
    let matrix = CompatibilityMatrix::paper_figure2();
    let path = tmp_path("fp-flip");
    for bit in 0..(4 + 8) * 8 {
        let mut corrupt = bytes.clone();
        corrupt[fp_region + bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &corrupt).unwrap();
        let result = StreamState::restore(&path, matrix.clone());
        assert!(
            matches!(
                result,
                Err(Error::Corrupt(_)) | Err(Error::MatrixMismatch { .. })
            ),
            "fingerprint-region bit {bit} flipped but restore did not reject"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

/// A restored engine from an *intact* checkpoint still works — guard that
/// the sweep above is testing corruption, not a reader that rejects
/// everything.
#[test]
fn intact_checkpoint_restores() {
    let engine = engine_with_state();
    let path = tmp_path("intact");
    engine.checkpoint(&path).unwrap();
    let restored = StreamState::restore(&path, CompatibilityMatrix::paper_figure2()).unwrap();
    assert_eq!(restored.total_seen(), engine.total_seen());
    assert_eq!(restored.symbol_match(), engine.symbol_match());
    std::fs::remove_file(&path).unwrap();
}
