//! Stream ingestion through the fallible scan path: `ingest_from` must
//! surface store faults as typed errors, ingest exactly the visited prefix,
//! and compose with the seqdb fault policies.

use noisemine_core::miner::MinerConfig;
use noisemine_core::{CompatibilityMatrix, PatternSpace, Symbol};
use noisemine_seqdb::{DiskDb, FaultPlan, FaultPolicy, FaultyStore};
use noisemine_stream::{Error, StreamState};

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "noisemine-stream-fault-{}-{name}",
        std::process::id()
    ))
}

fn config() -> MinerConfig {
    MinerConfig {
        min_match: 0.2,
        delta: 0.05,
        sample_size: 8,
        counters_per_scan: 10,
        space: PatternSpace::contiguous(3),
        seed: 42,
        ..MinerConfig::default()
    }
}

fn sequences(n: u16) -> Vec<Vec<Symbol>> {
    (0..n)
        .map(|i| (0..5).map(|j| Symbol((i + j) % 5)).collect())
        .collect()
}

#[test]
fn ingest_from_disk_matches_direct_ingestion() {
    let seqs = sequences(30);
    let path = tmp_path("clean.nmdb");
    let db = DiskDb::create_from(&path, seqs.iter().map(Vec::as_slice)).unwrap();

    let matrix = CompatibilityMatrix::paper_figure2();
    let mut from_disk = StreamState::new(matrix.clone(), config()).unwrap();
    let ingested = from_disk.ingest_from(&db, 0).unwrap();
    assert_eq!(ingested, 30);

    let mut direct = StreamState::new(matrix, config()).unwrap();
    direct.ingest_all(&seqs);

    assert_eq!(from_disk.total_seen(), direct.total_seen());
    assert_eq!(from_disk.symbol_match(), direct.symbol_match());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn ingest_from_skip_resumes_where_it_left_off() {
    let seqs = sequences(25);
    let path = tmp_path("resume.nmdb");
    let db = DiskDb::create_from(&path, seqs.iter().map(Vec::as_slice)).unwrap();

    let matrix = CompatibilityMatrix::paper_figure2();
    let mut split = StreamState::new(matrix.clone(), config()).unwrap();
    split.ingest_all(&seqs[..10]);
    let ingested = split.ingest_from(&db, split.total_seen()).unwrap();
    assert_eq!(ingested, 15);

    let mut whole = StreamState::new(matrix, config()).unwrap();
    whole.ingest_all(&seqs);
    assert_eq!(split.symbol_match(), whole.symbol_match());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn strict_store_fault_surfaces_as_scan_error() {
    let seqs = sequences(20);
    let path = tmp_path("strict.nmdb");
    let db = DiskDb::create_from(&path, seqs.iter().map(Vec::as_slice)).unwrap();
    drop(db);
    // One persistent bit flip somewhere in the records.
    let plan = FaultPlan::new().flip_bit((20 + 16 + 3) as u64 * 8);
    let store = FaultyStore::open(&path, plan, FaultPolicy::Strict).unwrap();

    let mut engine = StreamState::new(CompatibilityMatrix::paper_figure2(), config()).unwrap();
    let err = engine.ingest_from(&store, 0).unwrap_err();
    assert!(matches!(err, Error::Scan(_)), "{err}");
    // The fault hit record 0, so nothing was ingested before it.
    assert_eq!(engine.total_seen(), 0);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn quarantined_store_ingests_the_surviving_subset() {
    let seqs = sequences(20);
    let path = tmp_path("quarantine.nmdb");
    let db = DiskDb::create_from(&path, seqs.iter().map(Vec::as_slice)).unwrap();
    drop(db);
    let plan = FaultPlan::new().flip_bit((20 + 16 + 3) as u64 * 8);
    let store = FaultyStore::open(&path, plan, FaultPolicy::Quarantine).unwrap();
    assert_eq!(store.db().quarantined().len(), 1);

    let mut engine = StreamState::new(CompatibilityMatrix::paper_figure2(), config()).unwrap();
    let ingested = engine.ingest_from(&store, 0).unwrap();
    assert_eq!(ingested, 19);

    // Bit-identical to ingesting the clean surviving subset directly.
    let mut clean = StreamState::new(CompatibilityMatrix::paper_figure2(), config()).unwrap();
    clean.ingest_all(&seqs[1..]);
    assert_eq!(engine.symbol_match(), clean.symbol_match());
    std::fs::remove_file(&path).unwrap();
}
