//! Correctness anchor for the streaming engine: after ingesting any prefix
//! — in chunks, with checkpoint/restore at arbitrary points — the
//! incremental engine's frequent-pattern set must equal a batch `mine()`
//! over the same prefix with the same seed.

use std::collections::HashSet;

use noisemine_core::matching::MemorySequences;
use noisemine_core::miner::{mine, MinerConfig};
use noisemine_core::{CompatibilityMatrix, Pattern, PatternSpace, Symbol};
use noisemine_datagen::scalability_db;
use noisemine_stream::{Error, StreamState};

const M: usize = 5;

fn workload(n: usize, seed: u64) -> Vec<Vec<Symbol>> {
    scalability_db(M, n, 8, seed)
}

fn config(sample_size: usize) -> MinerConfig {
    MinerConfig {
        min_match: 0.2,
        delta: 0.05,
        sample_size,
        counters_per_scan: 10,
        space: PatternSpace::contiguous(4),
        seed: 42,
        ..MinerConfig::default()
    }
}

fn pattern_set(patterns: Vec<Pattern>) -> HashSet<Pattern> {
    patterns.into_iter().collect()
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("noisemine-stream-{}-{name}", std::process::id()))
}

/// The acceptance criterion: seeded workload, ingested in chunks with a
/// checkpoint/restore cycle mid-stream; at every chunk boundary the
/// incremental mine equals the batch mine over the same prefix.
#[test]
fn incremental_equals_batch_with_checkpoint_mid_stream() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let seqs = workload(60, 7);
    // Full-coverage sample: the reservoir sees every sequence, exactly like
    // the batch sequential sampler with n >= N.
    let cfg = config(seqs.len());
    let mut engine = StreamState::new(matrix.clone(), cfg.clone()).unwrap();
    let ckpt = tmp_path("equiv.ckpt");

    let chunks = [15usize, 10, 20, 15];
    let mut ingested = 0usize;
    for (round, &chunk) in chunks.iter().enumerate() {
        engine.ingest_all(&seqs[ingested..ingested + chunk]);
        ingested += chunk;

        // Restart the process mid-stream after the second chunk.
        if round == 1 {
            engine.checkpoint(&ckpt).unwrap();
            engine = StreamState::restore(&ckpt, matrix.clone()).unwrap();
        }

        let prefix = MemorySequences(seqs[..ingested].to_vec());
        let incremental = engine.mine(&prefix).unwrap();
        let batch = mine(&prefix, &matrix, &cfg).unwrap();
        assert_eq!(
            pattern_set(incremental.patterns()),
            pattern_set(batch.patterns()),
            "incremental and batch disagree after {ingested} sequences"
        );
    }
    std::fs::remove_file(&ckpt).ok();
}

/// With a small reservoir, chunked + checkpointed ingestion must be
/// bit-identical to one-shot ingestion: same totals, same symbol matches,
/// same sample, same subsequent mining output.
#[test]
fn chunked_checkpointed_ingestion_equals_one_shot() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let seqs = workload(200, 11);
    let cfg = config(16); // reservoir much smaller than the stream

    let mut oneshot = StreamState::new(matrix.clone(), cfg.clone()).unwrap();
    oneshot.ingest_all(&seqs);

    let ckpt = tmp_path("chunked.ckpt");
    let mut chunked = StreamState::new(matrix.clone(), cfg.clone()).unwrap();
    for (i, chunk) in seqs.chunks(33).enumerate() {
        chunked.ingest_all(chunk);
        if i % 2 == 0 {
            chunked.checkpoint(&ckpt).unwrap();
            chunked = StreamState::restore(&ckpt, matrix.clone()).unwrap();
        }
    }
    std::fs::remove_file(&ckpt).ok();

    assert_eq!(oneshot.total_seen(), chunked.total_seen());
    assert_eq!(oneshot.sample(), chunked.sample(), "reservoirs diverged");
    let (a, b) = (oneshot.symbol_match(), chunked.symbol_match());
    assert_eq!(a, b, "symbol matches diverged");

    let db = MemorySequences(seqs);
    let out_a = oneshot.mine(&db).unwrap();
    let out_b = chunked.mine(&db).unwrap();
    assert_eq!(out_a.patterns(), out_b.patterns());
}

/// Restore must reproduce the engine exactly: continuing an original and a
/// restored engine over the same suffix gives identical reservoirs (the
/// RNG state is part of the checkpoint).
#[test]
fn restore_resumes_rng_deterministically() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let seqs = workload(300, 23);
    let cfg = config(8);
    let ckpt = tmp_path("rng.ckpt");

    let mut original = StreamState::new(matrix.clone(), cfg).unwrap();
    original.ingest_all(&seqs[..150]);
    original.checkpoint(&ckpt).unwrap();
    let mut restored = StreamState::restore(&ckpt, matrix).unwrap();
    std::fs::remove_file(&ckpt).ok();

    original.ingest_all(&seqs[150..]);
    restored.ingest_all(&seqs[150..]);
    assert_eq!(original.sample(), restored.sample());
    assert_eq!(original.symbol_match(), restored.symbol_match());
}

/// Tracked borders survive checkpointing: mine, checkpoint, restore, and
/// the restored engine still knows the probed patterns.
#[test]
fn checkpoint_preserves_tracked_borders_and_drift_anchor() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let seqs = workload(80, 3);
    let cfg = config(80);
    let ckpt = tmp_path("borders.ckpt");

    let mut engine = StreamState::new(matrix.clone(), cfg).unwrap();
    engine.ingest_all(&seqs);
    let db = MemorySequences(seqs.clone());
    engine.mine(&db).unwrap();
    assert!(
        !engine.drift_exceeded(),
        "freshly mined engine cannot have drifted"
    );

    let tracked_before: Vec<Pattern> = engine.tracked_patterns().cloned().collect();
    engine.checkpoint(&ckpt).unwrap();
    let restored = StreamState::restore(&ckpt, matrix).unwrap();
    std::fs::remove_file(&ckpt).ok();

    let tracked_after: Vec<Pattern> = restored.tracked_patterns().cloned().collect();
    assert_eq!(tracked_before, tracked_after);
    assert!(
        !restored.drift_exceeded(),
        "drift anchor lost in checkpoint"
    );
    assert_eq!(restored.total_seen(), 80);
}

/// The drift detector: trips on first data, settles after a mine, and
/// trips again when the symbol distribution shifts hard.
#[test]
fn drift_detector_reacts_to_distribution_shift() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let cfg = config(64);
    let mut engine = StreamState::new(matrix, cfg).unwrap();
    assert!(!engine.drift_exceeded(), "empty engine has nothing to mine");

    let seqs = workload(50, 9);
    engine.ingest_all(&seqs);
    assert!(engine.drift_exceeded(), "first data must trigger a mine");

    let db = MemorySequences(seqs);
    engine.mine(&db).unwrap();
    assert!(!engine.drift_exceeded());

    // Shift: a long burst of pure d0 sequences moves symbol matches fast.
    for _ in 0..200 {
        engine.ingest(&[Symbol(0), Symbol(0), Symbol(0), Symbol(0)]);
    }
    assert!(
        engine.drift_exceeded(),
        "hard distribution shift went unnoticed"
    );
}

/// `mine_if_drifted` is a no-op while estimates are stable.
#[test]
fn mine_if_drifted_skips_stable_streams() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let cfg = config(512);
    let mut engine = StreamState::new(matrix, cfg).unwrap();
    let seqs = workload(100, 31);
    engine.ingest_all(&seqs[..99]);
    let db99 = MemorySequences(seqs[..99].to_vec());
    assert!(engine.mine_if_drifted(&db99).unwrap().is_some());
    // One more sequence from the same distribution: estimates barely move.
    engine.ingest(&seqs[99]);
    let db100 = MemorySequences(seqs.clone());
    assert!(engine.mine_if_drifted(&db100).unwrap().is_none());
}

/// Restoring against the wrong matrix must fail loudly, not corrupt state.
#[test]
fn restore_rejects_wrong_matrix() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let cfg = config(8);
    let ckpt = tmp_path("wrongmatrix.ckpt");
    let mut engine = StreamState::new(matrix, cfg).unwrap();
    engine.ingest_all(workload(20, 1));
    engine.checkpoint(&ckpt).unwrap();

    // Wrong size.
    let err = StreamState::restore(&ckpt, CompatibilityMatrix::identity(7)).unwrap_err();
    assert!(matches!(
        err,
        Error::MatrixMismatch {
            expected: 5,
            got: 7
        }
    ));
    // Right size, different entries.
    let err = StreamState::restore(&ckpt, CompatibilityMatrix::identity(5)).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)));
    std::fs::remove_file(&ckpt).ok();
}

/// Truncated or garbled checkpoint files are rejected with `Corrupt`.
#[test]
fn restore_rejects_corrupt_files() {
    let matrix = CompatibilityMatrix::paper_figure2;
    let cfg = config(8);
    let ckpt = tmp_path("corrupt.ckpt");
    let mut engine = StreamState::new(matrix(), cfg).unwrap();
    engine.ingest_all(workload(20, 2));
    engine.checkpoint(&ckpt).unwrap();

    let bytes = std::fs::read(&ckpt).unwrap();
    // Truncation.
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        StreamState::restore(&ckpt, matrix()).unwrap_err(),
        Error::Corrupt(_)
    ));
    // Bad magic.
    let mut garbled = bytes.clone();
    garbled[0] ^= 0xff;
    std::fs::write(&ckpt, &garbled).unwrap();
    assert!(matches!(
        StreamState::restore(&ckpt, matrix()).unwrap_err(),
        Error::Corrupt(_)
    ));
    std::fs::remove_file(&ckpt).ok();
}

/// Second mine reuses tracked borders: the phase-3 scan count cannot
/// exceed the batch miner's on the same prefix, and verdicts stay exact.
#[test]
fn remine_with_tracked_borders_stays_correct() {
    let matrix = CompatibilityMatrix::paper_figure2();
    let seqs = workload(120, 17);
    let cfg = config(seqs.len());
    let mut engine = StreamState::new(matrix.clone(), cfg.clone()).unwrap();

    engine.ingest_all(&seqs[..100]);
    let prefix = MemorySequences(seqs[..100].to_vec());
    engine.mine(&prefix).unwrap();

    engine.ingest_all(&seqs[100..]);
    let full = MemorySequences(seqs.clone());
    let incremental = engine.mine(&full).unwrap();
    let batch = mine(&full, &matrix, &cfg).unwrap();
    assert_eq!(
        pattern_set(incremental.patterns()),
        pattern_set(batch.patterns())
    );
    // The incremental run's phase 3 may not scan more than batch phase 3
    // (batch stats include phase 1's scan).
    assert!(incremental.stats.db_scans <= batch.stats.db_scans);
}
