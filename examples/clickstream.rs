//! Consumer-behavior mining with product-substitution noise.
//!
//! Section 1's third scenario: a customer who wanted product A sometimes
//! buys the near-substitute A' (out of stock, misplaced, …), so purchase
//! logs misrepresent intent. Treating products as symbols, the
//! compatibility matrix encodes substitution likelihoods, and the match
//! model recovers the *intended* purchase sequences. Run with:
//!
//! ```text
//! cargo run --release --example clickstream
//! ```

use noisemine::core::matching::MemorySequences;
use noisemine::core::miner::{mine, MinerConfig};
use noisemine::core::Pattern;
use noisemine::core::{Alphabet, PatternSpace};
use noisemine::datagen::noise::{apply_channel, channel_to_compatibility};
use noisemine::datagen::{generate, Background, GeneratorConfig, PlantedMotif};

fn main() {
    // A small product catalog: each product has one near-substitute
    // (espresso <-> lungo, tea <-> chai, ...).
    let products = [
        "espresso",
        "lungo",
        "tea",
        "chai",
        "croissant",
        "brioche",
        "bagel",
        "pretzel",
        "juice",
        "smoothie",
        "yogurt",
        "skyr",
    ];
    let alphabet = Alphabet::new(products).expect("distinct products");
    let m = alphabet.len();

    // The "intended" behaviour: two habitual purchase sequences.
    let habits = [
        Pattern::parse("espresso croissant juice", &alphabet).unwrap(),
        Pattern::parse("tea bagel yogurt skyr", &alphabet).unwrap(),
    ];
    let sessions = generate(&GeneratorConfig {
        num_sequences: 500,
        min_len: 8,
        max_len: 14,
        alphabet_size: m,
        background: Background::Zipf(0.5),
        motifs: habits
            .iter()
            .map(|h| PlantedMotif::new(h.clone(), 0.5))
            .collect(),
        seed: 77,
    });

    // Substitution channel: with probability 0.25 the customer ends up with
    // the paired substitute (pairs are adjacent ids).
    let sub_rate = 0.35;
    let mut channel = vec![vec![0.0; m]; m];
    for (i, row) in channel.iter_mut().enumerate() {
        let partner = if i % 2 == 0 { i + 1 } else { i - 1 };
        row[i] = 1.0 - sub_rate;
        row[partner] = sub_rate;
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let observed = apply_channel(&sessions, &channel, &mut rng);
    let matrix = channel_to_compatibility(&channel);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("positive diagonals");
    let db = MemorySequences(observed);

    // Mine the observed purchase logs with the three-phase miner.
    let config = MinerConfig {
        min_match: 0.15,
        sample_size: 500,
        space: PatternSpace::contiguous(4),
        ..MinerConfig::default()
    };
    let outcome = mine(&db, &norm, &config).expect("valid configuration");

    println!(
        "mined {} frequent purchase patterns from {} sessions ({} db scans); border:",
        outcome.frequent.len(),
        db.0.len(),
        outcome.stats.db_scans,
    );
    let mut border: Vec<String> = outcome
        .border
        .elements()
        .iter()
        .map(|p| p.display(&alphabet).unwrap())
        .collect();
    border.sort();
    for b in &border {
        println!("  {b}");
    }

    for habit in &habits {
        let found = outcome.frequent.iter().any(|f| &f.pattern == habit);
        println!(
            "habit {:?}: {}",
            habit.display(&alphabet).unwrap(),
            if found {
                "recovered despite substitutions"
            } else {
                "not recovered"
            }
        );
    }
}
