//! System-performance events with quantization noise.
//!
//! Section 1's second scenario: monitoring systems quantize continuous
//! attributes (CPU load, latency, …) into labeled bins; a value near a bin
//! boundary easily lands in the *adjacent* bin. The compatibility matrix
//! for this channel is tridiagonal — each level is confusable only with
//! its neighbours — and the match model recovers workload signatures that
//! boundary jitter hides from the support model. Run with:
//!
//! ```text
//! cargo run --release --example event_quantization
//! ```

use noisemine::core::matching::{db_match, db_support, MemorySequences};
use noisemine::core::miner::{mine, MinerConfig};
use noisemine::core::{Alphabet, Pattern, PatternSpace};
use noisemine::datagen::noise::channel_to_compatibility;
use noisemine::datagen::{apply_channel, generate, Background, GeneratorConfig, PlantedMotif};

fn main() {
    // Eight load levels, L0 (idle) .. L7 (saturated).
    let levels: Vec<String> = (0..8).map(|i| format!("L{i}")).collect();
    let alphabet = Alphabet::new(levels).expect("distinct level names");
    let m = alphabet.len();

    // The signature of a daily batch job: ramp up, plateau, ramp down.
    let signature = Pattern::parse("L1 L3 L5 L6 L6 L5 L3 L1", &alphabet).unwrap();
    let traces = generate(&GeneratorConfig {
        num_sequences: 400,
        min_len: 24,
        max_len: 36,
        alphabet_size: m,
        background: Background::Zipf(0.6), // low loads dominate
        motifs: vec![PlantedMotif::new(signature.clone(), 0.5)],
        seed: 31,
    });

    // Boundary jitter: a level is observed one bin off with probability 0.3
    // (0.15 up, 0.15 down; edge bins fold the mass inward).
    let jitter = 0.3;
    let mut channel = vec![vec![0.0; m]; m];
    for (i, row) in channel.iter_mut().enumerate() {
        row[i] = 1.0 - jitter;
        if i == 0 {
            row[1] += jitter / 2.0;
            row[0] += jitter / 2.0;
        } else if i == m - 1 {
            row[m - 2] += jitter / 2.0;
            row[m - 1] += jitter / 2.0;
        } else {
            row[i - 1] += jitter / 2.0;
            row[i + 1] += jitter / 2.0;
        }
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
    let observed = apply_channel(&traces, &channel, &mut rng);
    let matrix = channel_to_compatibility(&channel);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("tridiagonal posterior has positive diagonals");
    let db = MemorySequences(observed);

    let support = db_support(&signature, &db);
    let match_value = db_match(&signature, &db, &norm);
    println!(
        "batch-job signature {} (8 levels):",
        signature.display(&alphabet).unwrap()
    );
    println!("  support in jittered traces: {support:.3}   (planted occurrence was 0.50)");
    println!("  match   in jittered traces: {match_value:.3}");

    // Mine and check the signature's prefix chain is recovered.
    let config = MinerConfig {
        min_match: 0.15,
        sample_size: 400,
        space: PatternSpace::contiguous(8),
        ..MinerConfig::default()
    };
    let outcome = mine(&db, &norm, &config).expect("valid configuration");
    println!(
        "\nmined {} frequent patterns (match >= {}); longest border patterns:",
        outcome.frequent.len(),
        config.min_match
    );
    let mut border: Vec<&Pattern> = outcome.border.elements().iter().collect();
    border.sort_by_key(|p| std::cmp::Reverse(p.non_eternal_count()));
    for p in border.iter().take(5) {
        println!("  {}", p.display(&alphabet).unwrap());
    }

    // The ramp-up prefix must survive the jitter.
    let ramp = Pattern::parse("L1 L3 L5 L6", &alphabet).unwrap();
    let found = outcome.frequent.iter().any(|f| f.pattern == ramp);
    println!(
        "\nramp-up prefix {} (support {:.3}, match {:.3}): {}",
        ramp.display(&alphabet).unwrap(),
        db_support(&ramp, &db),
        db_match(&ramp, &db, &norm),
        if found {
            "recovered despite boundary jitter"
        } else {
            "not recovered"
        }
    );
}
