//! Recovering protein motifs concealed by BLOSUM-style mutations.
//!
//! This is the paper's motivating scenario (Section 1): amino acids mutate
//! into chemically similar ones (N→D, K→R, V→I …) with little functional
//! change, which slashes the *support* of long motifs while the *match*
//! model — armed with a compatibility matrix — still sees them.
//!
//! The example plants known motifs into synthetic protein sequences,
//! mutates the database with a concentrated BLOSUM-partner channel (each
//! amino acid mutates into its likeliest substitute — the N→D/K→R/V→I
//! regime of the paper's Figure 1), and compares how many planted motifs
//! each model recovers. Run with:
//!
//! ```text
//! cargo run --release --example protein_motifs
//! ```

use noisemine::baselines::mine_levelwise;
use noisemine::core::matching::{
    db_match, db_support, MatchMetric, MemorySequences, SupportMetric,
};
use noisemine::core::PatternSpace;
use noisemine::datagen::{ProteinWorkload, ProteinWorkloadConfig};

fn main() {
    let workload = ProteinWorkload::new(ProteinWorkloadConfig {
        num_sequences: 400,
        min_len: 40,
        max_len: 60,
        num_motifs: 4,
        min_motif_len: 5,
        max_motif_len: 11,
        occurrence: 0.45,
        seed: 42,
    });
    let alphabet = &workload.alphabet;
    println!("planted motifs:");
    for m in &workload.motifs {
        println!("  {}", m.display(alphabet).unwrap());
    }

    // Mutate 40% of positions, each into its BLOSUM-likeliest partner.
    let mu = 0.4;
    let channel = noisemine::datagen::noise::partner_channel(
        20,
        mu,
        &noisemine::datagen::blosum::partner_map(1),
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let noisy = noisemine::datagen::apply_channel(&workload.standard, &channel, &mut rng);
    let matrix = noisemine::datagen::noise::channel_to_compatibility(&channel);
    let noisy_db = MemorySequences(noisy);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("BLOSUM posterior has a positive diagonal");

    println!("\nper-motif support vs match in the mutated database (mu = {mu}):");
    println!("{:<14} {:>9} {:>9}", "motif", "support", "match");
    for motif in &workload.motifs {
        let s = db_support(motif, &noisy_db);
        let m = db_match(motif, &noisy_db, &norm);
        println!(
            "{:<14} {:>9.3} {:>9.3}",
            motif.display(alphabet).unwrap(),
            s,
            m
        );
    }

    // Mine both models at the same threshold and count recovered motifs.
    let threshold = 0.1;
    let space = PatternSpace::contiguous(12);
    let support_result =
        mine_levelwise(&noisy_db, &SupportMetric, 20, threshold, &space, usize::MAX);
    let match_result = mine_levelwise(
        &noisy_db,
        &MatchMetric { matrix: &norm },
        20,
        threshold,
        &space,
        usize::MAX,
    );

    let recovered = |set: &std::collections::HashSet<noisemine::core::Pattern>| {
        workload.motifs.iter().filter(|m| set.contains(*m)).count()
    };
    let s_set = support_result.pattern_set();
    let m_set = match_result.pattern_set();
    println!(
        "\nat min_support = min_match = {threshold}:\n  support model recovers {}/{} motifs \
         ({} frequent patterns total)\n  match model   recovers {}/{} motifs ({} frequent \
         patterns total)",
        recovered(&s_set),
        workload.motifs.len(),
        support_result.frequent.len(),
        recovered(&m_set),
        workload.motifs.len(),
        match_result.frequent.len(),
    );
}
