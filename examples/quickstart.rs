//! Quickstart: mine obscure patterns from a tiny noisy sequence database.
//!
//! Reuses the paper's own worked example (Figures 2 and 4): five symbols, a
//! hand-written compatibility matrix, and four short sequences. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noisemine::core::matching::MemorySequences;
use noisemine::core::miner::{mine, MinerConfig};
use noisemine::core::{Alphabet, CompatibilityMatrix, PatternSpace};

fn main() {
    // The paper's Figure 2 matrix uses symbols d1..d5; our ids are 0-based.
    let alphabet = Alphabet::new((1..=5).map(|i| format!("d{i}"))).expect("distinct names");
    let matrix = CompatibilityMatrix::paper_figure2();

    // Figure 4(a)'s database.
    let db = MemorySequences(vec![
        alphabet.encode("d1 d2 d3 d1").unwrap(),
        alphabet.encode("d4 d2 d1").unwrap(),
        alphabet.encode("d3 d4 d2 d1").unwrap(),
        alphabet.encode("d2 d2").unwrap(),
    ]);

    // Mine all patterns with match >= 0.15. The sample covers the whole
    // database here, which makes the probabilistic result exact.
    let config = MinerConfig {
        min_match: 0.15,
        sample_size: db.0.len(),
        space: PatternSpace::contiguous(4),
        ..MinerConfig::default()
    };
    let outcome = mine(&db, &matrix, &config).expect("valid configuration");

    println!("frequent patterns (match >= {}):", config.min_match);
    for f in &outcome.frequent {
        println!(
            "  {:<12}  match ~ {:.3}   [{:?}]",
            f.pattern.display(&alphabet).unwrap(),
            f.match_estimate,
            f.provenance,
        );
    }
    println!("\nborder (maximal frequent patterns):");
    for p in outcome.border.elements() {
        println!("  {}", p.display(&alphabet).unwrap());
    }
    println!(
        "\nstats: {} db scan(s), {} sample-confident, {} verified exactly, {} implied",
        outcome.stats.db_scans,
        outcome.stats.sample_frequent,
        outcome.stats.verified_patterns,
        outcome.stats.propagated_patterns,
    );
}
