//! Position-sensitive gapped patterns: the Zinc Finger signature.
//!
//! Section 3 of the paper motivates the eternal symbol `*` with the Zinc
//! Finger transcription factor, whose signature `C**C************H**H`
//! fixes two cysteines and two histidines at exact offsets with don't-care
//! gaps between them. This example plants that signature into synthetic
//! sequences, adds mutation noise, and mines with a gapped pattern space
//! (`max_gap > 0`) to find it again. Run with:
//!
//! ```text
//! cargo run --release --example zinc_finger
//! ```

use noisemine::core::matching::{db_match, db_support, MemorySequences};
use noisemine::core::{Alphabet, Pattern, PatternSpace};
use noisemine::datagen::noise::{apply_channel, channel_to_compatibility, partner_channel};
use noisemine::datagen::{generate, Background, GeneratorConfig, PlantedMotif};

fn main() {
    let alphabet = Alphabet::amino_acids();
    // A shortened Zinc-Finger-like signature (C *2 C *4 H *2 H) so the
    // full-length pattern fits comfortably in the example's sequences; the
    // real 20-long signature works identically with longer sequences.
    let signature = Pattern::parse("C**C****H**H", &alphabet).expect("valid signature");
    println!(
        "planting signature {} (length {}, {} concrete symbols, max gap {})",
        signature.display(&alphabet).unwrap(),
        signature.len(),
        signature.non_eternal_count(),
        signature.max_gap(),
    );

    let config = GeneratorConfig {
        num_sequences: 300,
        min_len: 30,
        max_len: 45,
        alphabet_size: 20,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(signature.clone(), 0.5)],
        seed: 11,
    };
    let standard = generate(&config);

    // Mutate with a *symmetric* pairing channel at 45%: amino acids are
    // grouped into fixed substitute pairs (id 2k <-> 2k+1) and flip to
    // their pair partner almost half the time. Symmetric pairing keeps the
    // posterior informative in both directions, the cleanest illustration
    // of the paper's mutation model.
    let partners: Vec<Vec<usize>> = (0..20).map(|i| vec![i ^ 1]).collect();
    let channel = partner_channel(20, 0.45, &partners);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(23);
    let noisy = apply_channel(&standard, &channel, &mut rng);
    let matrix = channel_to_compatibility(&channel);
    let norm = matrix
        .diagonal_normalized_clamped()
        .expect("positive diagonals");
    let noisy_db = MemorySequences(noisy);

    let support = db_support(&signature, &noisy_db);
    let match_value = db_match(&signature, &noisy_db, &norm);
    println!(
        "in the mutated database: support = {support:.3}, match = {match_value:.3} \
         (planted occurrence was 0.50)"
    );

    // Gapped mining: the pattern space must admit runs of '*'. A mining run
    // over a gapped space is exponentially larger than a contiguous one, so
    // keep the bounds tight around the signature's shape.
    let space = PatternSpace::new(4, signature.len()).expect("valid space");
    assert!(space.admits(&signature));

    // Demonstrate the Apriori chain the miner exploits: every subpattern of
    // the signature matches at least as strongly (Claim 3.1).
    let sub = Pattern::parse("C**C****H", &alphabet).unwrap();
    let sub_match = db_match(&sub, &noisy_db, &norm);
    println!(
        "subpattern {} has match {sub_match:.3} >= {match_value:.3} (Apriori property)",
        sub.display(&alphabet).unwrap()
    );
    assert!(sub_match >= match_value - 1e-12);

    // The degraded signature still clears a threshold that plain support
    // misses — the paper's core point, position-sensitive edition.
    let threshold = 0.30;
    println!(
        "\nat min threshold {threshold}: support model {} the signature, match model {} it",
        if support >= threshold {
            "keeps"
        } else {
            "LOSES"
        },
        if match_value >= threshold {
            "keeps"
        } else {
            "LOSES"
        },
    );
}
