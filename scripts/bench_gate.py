#!/usr/bin/env python3
"""Performance-regression gate for the committed bench baselines.

Compares a freshly measured bench JSON (``BENCH_kernel.json`` from the
``match_kernel`` bin, ``BENCH_parallel.json`` from ``scan_parallel``,
``BENCH_serve.json`` from ``serve_load``, or ``BENCH_index.json`` from
``index_scan``) against the committed baseline of the same bench. Rows are matched by their
identity fields, throughput is compared, a delta table is printed, and the
script exits non-zero when any row's throughput dropped by more than the
threshold (default 25%).

Usage:
    bench_gate.py BASELINE CURRENT [--threshold 0.25] [--out report.md]

The two files must come from the same bench (their ``"bench"`` field picks
the row schema). Rows present in the baseline but missing from the current
run fail the gate — a silently shrunk grid is not a pass, and a baseline
with no rows at all is an error for the same reason. Rows only in the
current run are reported but don't fail anything (the next baseline refresh
picks them up). Some rows gate a within-run ratio instead of absolute
throughput (see ``SCHEMAS``): the kernel bench's ``simd`` rows compare
``speedup_vs_trie``, so the "simd stays >= 3x over trie" contract is
enforced hardware-relatively rather than against another machine's clock.
Only the standard library is used.

Seeding a baseline: a gate needs a committed baseline to compare against.
To seed one for a new bench (or refresh an old one), run the bench bin on a
quiet machine and commit its JSON at the repo root, e.g.::

    cargo run --release -p noisemine-bench --bin serve_load -- --out BENCH_serve.json
    git add BENCH_serve.json

A missing baseline file is reported as an actionable error, not a pass —
an uncommitted baseline would silently disable the gate.
"""

import argparse
import json
import sys

# bench name -> (identity fields, gated metric, per-row metric overrides)
# for one row. Ratio metrics (`speedup`, `speedup_vs_trie`) are measured
# within a single run, so they stay meaningful across hosts and noisy
# runners where absolute throughput is not comparable: the index bench's
# indexed rows and the kernel bench's simd rows finish in microseconds,
# where absolute evals/s is runner noise, but the within-run ratio directly
# encodes the contract ("skip-scan stays >= 2x", "simd stays >= 3x over
# trie on the gated grid rows"). An override maps ``field == value`` to the
# metric gated for matching rows instead of the default.
SCHEMAS = {
    "match_kernel": (
        ("symbols", "len", "candidates", "kernel"),
        "evals_per_sec",
        {("kernel", "simd"): "speedup_vs_trie"},
    ),
    "scan_parallel": (("backend", "threads"), "seqs_per_sec", {}),
    "serve_load": (("patterns", "concurrency", "mode"), "rps", {}),
    "index_scan": (("symbols", "len", "candidates", "mode"), "speedup", {}),
}


def row_metric(bench, row):
    """The metric gated for this row: a schema override if one matches,
    else the bench default."""
    key_fields, default, overrides = SCHEMAS[bench]
    del key_fields
    for (field, value), metric in overrides.items():
        if row.get(field) == value:
            return metric
    return default


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        sys.exit(
            f"error: {path}: no such file. If this is the committed baseline, seed it by\n"
            f"running the matching bench bin and committing its JSON output, e.g.:\n"
            f"  cargo run --release -p noisemine-bench --bin serve_load -- --out {path}\n"
            f"  git add {path}\n"
            f"(see the docstring at the top of scripts/bench_gate.py)"
        )
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path}: not valid JSON ({e}) — partial bench write?")
    bench = doc.get("bench")
    if bench not in SCHEMAS:
        sys.exit(f"error: {path}: unknown bench {bench!r} (expected one of {sorted(SCHEMAS)})")
    key_fields = SCHEMAS[bench][0]
    rows = {}
    for i, row in enumerate(doc.get("rows", [])):
        metric = row_metric(bench, row)
        missing = [k for k in (*key_fields, metric) if k not in row]
        if missing:
            sys.exit(
                f"error: {path}: row {i} is missing field(s) {', '.join(sorted(missing))}"
                f" — bench {bench!r} rows need identity fields {list(key_fields)} and"
                f" metric {metric!r} (row was {row!r})"
            )
        key = tuple(row[k] for k in key_fields)
        if key in rows:
            sys.exit(f"error: {path}: duplicate row for {dict(zip(key_fields, key))}")
        rows[key] = (metric, float(row[metric]))
    return bench, key_fields, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated fractional throughput drop (default 0.25)",
    )
    ap.add_argument("--out", help="also write the delta table to this file (markdown)")
    args = ap.parse_args()

    base_bench, key_fields, base = load(args.baseline)
    cur_bench, _, cur = load(args.current)
    if base_bench != cur_bench:
        sys.exit(f"error: bench mismatch: baseline is {base_bench!r}, current is {cur_bench!r}")
    if not base:
        sys.exit(
            f"error: {args.baseline}: baseline has no rows — an empty baseline gates"
            f" nothing and would let any regression through. Reseed it from a real"
            f" bench run (see the docstring at the top of scripts/bench_gate.py)."
        )

    header = [*key_fields, "metric", "base", "current", "delta", "status"]
    table = [header, ["---"] * len(header)]
    failures = []
    for key in sorted(base):
        metric, base_v = base[key]
        cur_v = cur.get(key, (metric, None))[1]
        if cur_v is None:
            failures.append(f"row {dict(zip(key_fields, key))} missing from current run")
            table.append([*map(str, key), metric, f"{base_v:g}", "-", "-", "MISSING"])
            continue
        delta = (cur_v - base_v) / base_v if base_v else 0.0
        regressed = delta < -args.threshold
        if regressed:
            failures.append(
                f"row {dict(zip(key_fields, key))} regressed {-delta:.1%} "
                f"({base_v:g} -> {cur_v:g} {metric}, threshold {args.threshold:.0%})"
            )
        table.append(
            [
                *map(str, key),
                metric,
                f"{base_v:g}",
                f"{cur_v:g}",
                f"{delta:+.1%}",
                "FAIL" if regressed else "ok",
            ]
        )
    for key in sorted(set(cur) - set(base)):
        metric, cur_v = cur[key]
        table.append([*map(str, key), metric, "-", f"{cur_v:g}", "-", "new"])

    lines = [f"## Bench gate: {base_bench} (threshold {args.threshold:.0%} drop)", ""]
    lines += ["| " + " | ".join(row) + " |" for row in table]
    lines.append("")
    if failures:
        lines.append(f"**{len(failures)} regression(s):**")
        lines += [f"- {f}" for f in failures]
    else:
        lines.append("No regressions.")
    report = "\n".join(lines)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report + "\n")

    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
