#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Scans ``README.md``, every root-level ``*.md``, and ``docs/**/*.md`` for
inline markdown links and validates the ones this repo controls:

- relative file links must point at an existing file or directory;
- ``#anchor`` fragments (in-file or cross-file into another markdown file)
  must match a heading's GitHub-style slug in the target document.

External links (``http://``, ``https://``, ``mailto:``) are *not* fetched —
CI must stay deterministic and offline — so only their syntax rides along.
Exits non-zero listing every broken link with file and line number. Only
the standard library is used.

Usage:
    check_links.py [ROOT]          # default: the repo root containing this script
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path):
    """All anchor slugs of a markdown file, with GitHub's -1, -2 dedup."""
    counts = {}
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if not m:
                continue
            slug = slugify(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def doc_files(root):
    files = []
    for entry in sorted(os.listdir(root)):
        if entry.endswith(".md"):
            files.append(os.path.join(root, entry))
    docs = os.path.join(root, "docs")
    for dirpath, _, names in os.walk(docs):
        for name in sorted(names):
            if name.endswith(".md"):
                files.append(os.path.join(dirpath, name))
    return files


def check_file(path, root, slug_cache):
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in INLINE_LINK.finditer(line):
                target = m.group(1)
                if target.startswith(EXTERNAL):
                    continue
                where = f"{os.path.relpath(path, root)}:{lineno}"
                target, _, anchor = target.partition("#")
                if target:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), target)
                    )
                    if not os.path.exists(resolved):
                        errors.append(f"{where}: broken link target {target!r}")
                        continue
                else:
                    resolved = path
                if anchor:
                    if not resolved.endswith(".md") or os.path.isdir(resolved):
                        continue  # anchors into non-markdown: nothing to check
                    if resolved not in slug_cache:
                        slug_cache[resolved] = heading_slugs(resolved)
                    if anchor.lower() not in slug_cache[resolved]:
                        errors.append(
                            f"{where}: no heading for anchor "
                            f"#{anchor} in {os.path.relpath(resolved, root)}"
                        )
    return errors


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    )
    slug_cache = {}
    errors = []
    files = doc_files(root)
    for path in files:
        errors.extend(check_file(path, root, slug_cache))
    if errors:
        print(f"{len(errors)} broken link(s) across {len(files)} file(s):")
        for e in errors:
            print(f"  {e}")
        sys.exit(1)
    print(f"checked {len(files)} markdown file(s): all links resolve")


if __name__ == "__main__":
    main()
