#!/usr/bin/env python3
"""Unit tests for scripts/bench_gate.py — run with ``python3 scripts/test_bench_gate.py``.

Covers the gate's verdicts (pass, regression, shrunk grid) and, most
importantly, its error reporting: a bench row missing an identity field or
the gated metric must produce an actionable message naming the missing
field, never a bare ``KeyError`` traceback. Only the standard library is
used, matching bench_gate.py itself.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_gate.py")


def kernel_doc(rows):
    return {"bench": "match_kernel", "rows": rows}


def kernel_row(symbols=8, length=4, candidates=16, kernel="trie", evals=1000.0):
    return {
        "symbols": symbols,
        "len": length,
        "candidates": candidates,
        "kernel": kernel,
        "evals_per_sec": evals,
    }


class GateHarness(unittest.TestCase):
    def run_gate(self, baseline_doc, current_doc, *extra):
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "base.json")
            cur = os.path.join(tmp, "cur.json")
            with open(base, "w") as f:
                json.dump(baseline_doc, f)
            with open(cur, "w") as f:
                json.dump(current_doc, f)
            return subprocess.run(
                [sys.executable, GATE, base, cur, *extra],
                capture_output=True,
                text=True,
            )


class TestVerdicts(GateHarness):
    def test_unchanged_rows_pass(self):
        doc = kernel_doc([kernel_row()])
        res = self.run_gate(doc, doc)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("No regressions", res.stdout)

    def test_drop_beyond_threshold_fails(self):
        res = self.run_gate(
            kernel_doc([kernel_row(evals=1000.0)]),
            kernel_doc([kernel_row(evals=500.0)]),
        )
        self.assertEqual(res.returncode, 1)
        self.assertIn("regressed", res.stdout)

    def test_drop_within_custom_threshold_passes(self):
        res = self.run_gate(
            kernel_doc([kernel_row(evals=1000.0)]),
            kernel_doc([kernel_row(evals=500.0)]),
            "--threshold",
            "0.6",
        )
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_row_missing_from_current_fails(self):
        res = self.run_gate(
            kernel_doc([kernel_row(kernel="trie"), kernel_row(kernel="naive")]),
            kernel_doc([kernel_row(kernel="trie")]),
        )
        self.assertEqual(res.returncode, 1)
        self.assertIn("missing from current run", res.stdout)

    def test_simd_rows_gate_on_within_run_trie_ratio(self):
        def simd_row(evals, ratio):
            row = kernel_row(kernel="simd", evals=evals)
            row["speedup_vs_trie"] = ratio
            return row

        base = kernel_doc([simd_row(evals=1000.0, ratio=3.5)])
        # Absolute throughput halves (slower runner) but the within-run
        # ratio holds: not a regression.
        ok = self.run_gate(base, kernel_doc([simd_row(evals=500.0, ratio=3.4)]))
        self.assertEqual(ok.returncode, 0, ok.stderr)
        self.assertIn("speedup_vs_trie", ok.stdout)
        # Throughput doubles but the ratio collapsed: the simd kernel lost
        # its edge over trie, and that is what the row gates.
        bad = self.run_gate(base, kernel_doc([simd_row(evals=2000.0, ratio=1.2)]))
        self.assertEqual(bad.returncode, 1)
        self.assertIn("regressed", bad.stdout)
        self.assertIn("speedup_vs_trie", bad.stdout)

    def test_simd_row_missing_ratio_metric_is_an_error(self):
        row = kernel_row(kernel="simd")  # has evals_per_sec, lacks the ratio
        res = self.run_gate(kernel_doc([row]), kernel_doc([row]))
        self.assertEqual(res.returncode, 1)
        self.assertIn("missing field(s) speedup_vs_trie", res.stderr)
        self.assertNotIn("Traceback", res.stderr)

    def test_empty_baseline_fails_not_passes(self):
        res = self.run_gate(kernel_doc([]), kernel_doc([kernel_row()]))
        self.assertEqual(res.returncode, 1)
        self.assertIn("baseline has no rows", res.stderr)

    def test_index_scan_schema_gates_speedup(self):
        def idx_row(speedup):
            return {
                "symbols": 64,
                "len": 6,
                "candidates": 16,
                "mode": "indexed",
                "speedup": speedup,
                "evals_per_sec": 1.0,
            }

        doc = {"bench": "index_scan", "rows": [idx_row(6.0)]}
        ok = self.run_gate(doc, {"bench": "index_scan", "rows": [idx_row(5.5)]})
        self.assertEqual(ok.returncode, 0, ok.stderr)
        bad = self.run_gate(doc, {"bench": "index_scan", "rows": [idx_row(2.0)]})
        self.assertEqual(bad.returncode, 1)
        self.assertIn("regressed", bad.stdout)


class TestMalformedInput(GateHarness):
    def test_row_missing_metric_reports_field_not_traceback(self):
        row = kernel_row()
        del row["evals_per_sec"]
        res = self.run_gate(kernel_doc([kernel_row()]), kernel_doc([row]))
        self.assertEqual(res.returncode, 1)
        self.assertIn("missing field(s) evals_per_sec", res.stderr)
        self.assertNotIn("Traceback", res.stderr)

    def test_row_missing_identity_field_reports_field_not_traceback(self):
        row = kernel_row()
        del row["kernel"]
        del row["symbols"]
        res = self.run_gate(kernel_doc([row]), kernel_doc([kernel_row()]))
        self.assertEqual(res.returncode, 1)
        self.assertIn("missing field(s) kernel, symbols", res.stderr)
        self.assertNotIn("Traceback", res.stderr)

    def test_unknown_bench_rejected(self):
        doc = {"bench": "mystery", "rows": []}
        res = self.run_gate(doc, doc)
        self.assertEqual(res.returncode, 1)
        self.assertIn("unknown bench", res.stderr)

    def test_bench_mismatch_rejected(self):
        res = self.run_gate(
            kernel_doc([kernel_row()]),
            {"bench": "scan_parallel", "rows": []},
        )
        self.assertEqual(res.returncode, 1)
        self.assertIn("bench mismatch", res.stderr)


if __name__ == "__main__":
    unittest.main()
