//! Offline shim for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with plain wall-clock timing (auto-scaled
//! iteration counts, median-of-batches reporting) instead of criterion's
//! statistical machinery. Output is one line per benchmark:
//!
//! ```text
//! halfway_generation/64    time: 12.345 µs/iter  (3 batches, 1000 iters)
//! ```
//!
//! `cargo bench` therefore still runs every bench end-to-end, which is what
//! CI needs; precise statistics require the real crate.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name + parameter pair, rendered `name/param`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter, rendered as-is.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    batches: u32,
    target_batch_time: Duration,
    /// Filled by [`Bencher::iter`]: (total time, total iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(batches: u32, target_batch_time: Duration) -> Self {
        Self {
            batches,
            target_batch_time,
            result: None,
        }
    }

    /// Runs `f` repeatedly, auto-scaling the iteration count so each batch
    /// lasts roughly the target time, and records the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: run once to estimate per-iteration cost.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (self.target_batch_time.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = first;
        let mut iters = 1u64;
        for _ in 0..self.batches {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += per_batch;
        }
        self.result = Some((total, iters));
    }
}

/// Top-level benchmark driver (a stub of criterion's).
pub struct Criterion {
    batches: u32,
    target_batch_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            batches: 3,
            target_batch_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.batches, self.target_batch_time, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim keeps its fixed batch plan
    /// (criterion uses this as the statistical sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; see [`BenchmarkGroup::sample_size`].
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_one(
            &label,
            self.criterion.batches,
            self.criterion.target_batch_time,
            f,
        );
        self
    }

    /// Benchmarks `f` with an input value (the input is also passed to the
    /// closure, matching criterion's signature).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_one(
            &label,
            self.criterion.batches,
            self.criterion.target_batch_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    batches: u32,
    target_batch_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher::new(batches, target_batch_time);
    f(&mut bencher);
    match bencher.result {
        Some((total, iters)) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            println!(
                "{label:<50} time: {}  ({batches} batches, {iters} iters)",
                format_time(per_iter),
            );
        }
        None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us/iter", secs * 1e6)
    } else {
        format!("{:.1} ns/iter", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new(2, Duration::from_millis(1));
        b.iter(|| 1 + 1);
        let (total, iters) = b.result.expect("iter() records a result");
        assert!(iters >= 3);
        assert!(total > Duration::ZERO);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("dense", 64).to_string(), "dense/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            batches: 1,
            target_batch_time: Duration::from_micros(100),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("f", |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, x| b.iter(|| x * x));
        group.finish();
    }
}
