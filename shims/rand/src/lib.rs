//! Offline drop-in shim for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generators, both backed by xoshiro256** seeded via
//! SplitMix64. The statistical quality is more than adequate for sampling
//! and noise generation; the *streams differ* from upstream `rand`, which
//! only matters if results seeded by upstream rand were recorded somewhere
//! (they are not — every experiment in this repo is seeded through this
//! shim).
//!
//! Determinism contract: for a given seed, every generator here produces
//! the same stream on every platform and in every future build of this
//! workspace. Checkpointing code in `noisemine-stream` relies on this.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait Uniform: Sized {
    /// Draws one uniformly distributed value.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform for u64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Uniform for u16 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Uniform for u8 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Uniform for usize {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Uniform for bool {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `u64` in `[0, bound)` without modulo bias (rejection sampling on
/// the top `2^64 - (2^64 mod bound)` values).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % bound;
        }
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::uniform(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value (`f64` in `[0, 1)`, full range
    /// for integers, fair coin for `bool`).
    fn gen<T: Uniform>(&mut self) -> T {
        T::uniform(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::uniform(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand seeds into xoshiro state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// xoshiro256** — the shim's standard generator.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but deterministic,
    /// portable, and statistically strong for simulation purposes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 256-bit state (for checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds the generator from a raw state snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                let mut sm = SplitMix64(0x9e37_79b9);
                for w in &mut s {
                    *w = sm.next();
                }
            }
            Self { s }
        }
    }

    /// Alias of [`StdRng`]; upstream `SmallRng` is also a xoshiro variant.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_are_inclusive_exclusive_as_declared() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hit_hi = false;
        for _ in 0..1_000 {
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            hit_hi |= w == 3;
        }
        assert!(hit_hi, "inclusive upper bound never drawn");
        assert_eq!(rng.gen_range(7..8usize), 7);
        assert_eq!(rng.gen_range(7..=7usize), 7);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            rng.gen::<u64>();
        }
        let snapshot = rng.state();
        let expected: Vec<u64> = (0..10).map(|_| rng.gen()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let got: Vec<u64> = (0..10).map(|_| resumed.gen()).collect();
        assert_eq!(expected, got);
    }
}
