//! Offline no-op shim for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace annotates public result types with
//! `#[derive(Serialize, Deserialize)]` so downstream users *could* plug in
//! a serde format crate — but no format crate is part of the allowed
//! dependency set, so nothing in-tree ever calls serde's methods. This shim
//! keeps the annotations compiling without network access:
//!
//! - [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type;
//! - the derive macros (re-exported from the sibling `serde_derive` shim)
//!   expand to nothing.
//!
//! Actual on-disk persistence in this workspace (checkpoints, the binary
//! sequence database) uses explicit, versioned formats written by hand —
//! see `noisemine-seqdb::disk` and `noisemine-stream::checkpoint`.

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
