//! Facade crate re-exporting the noisemine workspace.
pub use noisemine_baselines as baselines;
pub use noisemine_core as core;
pub use noisemine_datagen as datagen;
pub use noisemine_obs as obs;
pub use noisemine_seqdb as seqdb;
pub use noisemine_serve as serve;
pub use noisemine_stream as stream;
