//! A tiny seeded property-test harness.
//!
//! The workspace's build environment cannot fetch `proptest`, so the
//! property suites drive their invariants with plain seeded generation:
//! [`run_cases`] executes a closure over a fixed number of independently
//! seeded RNGs and reports the failing case's seed so a failure reproduces
//! with `CASE_SEED=<n>`-style editing. No shrinking — cases are kept small
//! instead.
//!
//! `NOISEMINE_PROPTEST_CASES=<n>` overrides every suite's case count (like
//! proptest's `PROPTEST_CASES`): the nightly CI run sets it high to sweep
//! far more seeds than the per-PR default, and a single case reproduces
//! deterministically because seeds depend only on the case index.

// Each integration-test binary compiles this module independently and uses
// only a subset of the generators.
#![allow(dead_code)]

use noisemine::core::{CompatibilityMatrix, Pattern, PatternElem, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` for `cases` independently seeded RNGs, panicking with the case
/// index and seed on the first failure. `NOISEMINE_PROPTEST_CASES` (if set)
/// overrides `cases` for every suite at once.
pub fn run_cases(cases: usize, mut f: impl FnMut(&mut StdRng)) {
    let cases = match std::env::var("NOISEMINE_PROPTEST_CASES") {
        Ok(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("NOISEMINE_PROPTEST_CASES must be an integer, got {v:?}")),
        Err(_) => cases,
    };
    for case in 0..cases {
        let seed = 0x5052_4f50_u64 ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("property failed at case {case} (seed {seed:#x}): {msg}");
        }
    }
}

/// A random column-stochastic compatibility matrix over `m` symbols with
/// entries bounded away from zero.
pub fn random_matrix(rng: &mut StdRng, m: usize, min_weight: f64) -> CompatibilityMatrix {
    let cols: Vec<Vec<f64>> = (0..m)
        .map(|_| {
            let col: Vec<f64> = (0..m).map(|_| rng.gen_range(min_weight..1.0)).collect();
            let total: f64 = col.iter().sum();
            col.into_iter().map(|w| w / total).collect()
        })
        .collect();
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| (0..m).map(|j| cols[j][i]).collect())
        .collect();
    CompatibilityMatrix::from_rows(rows).expect("normalized columns")
}

/// A random sequence of length `1..max_len` over symbols `0..m`.
pub fn random_sequence(rng: &mut StdRng, m: usize, max_len: usize) -> Vec<Symbol> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| Symbol(rng.gen_range(0..m as u16)))
        .collect()
}

/// A random batch of sequences (count in `lo..hi`).
pub fn random_sequences(
    rng: &mut StdRng,
    m: usize,
    max_len: usize,
    lo: usize,
    hi: usize,
) -> Vec<Vec<Symbol>> {
    let count = rng.gen_range(lo..hi);
    (0..count)
        .map(|_| random_sequence(rng, m, max_len))
        .collect()
}

/// A random valid pattern (concrete endpoints) of up to 5 positions over
/// symbols `0..m`.
pub fn random_pattern(rng: &mut StdRng, m: usize) -> Pattern {
    let len = rng.gen_range(1..5usize);
    let mut elems: Vec<PatternElem> = (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                PatternElem::Any
            } else {
                PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)))
            }
        })
        .collect();
    let n = elems.len();
    elems[0] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
    elems[n - 1] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
    Pattern::new(elems).expect("endpoints are concrete")
}
