//! Edge-case tests across the public API: boundary conditions, degenerate
//! inputs, and behaviors not exercised by the worked-example suites.

use noisemine::baselines::{mine_top_k, MaxMinerConfig};
use noisemine::core::border_collapse::levels_in_collapse_order;
use noisemine::core::chernoff::{mislabel_tail, SpreadMode};
use noisemine::core::lattice::halfway;
use noisemine::core::matching::{
    db_match, db_support, sequence_match, sequence_support, MemorySequences,
};
use noisemine::core::miner::{mine, MinerConfig, Provenance};
use noisemine::core::{Alphabet, CompatibilityMatrix, Pattern, PatternSpace, Symbol};
use noisemine::datagen::{generate, Background, GeneratorConfig};
use noisemine::seqdb::{DiskDbWriter, MemoryDb};

fn a10() -> Alphabet {
    Alphabet::synthetic(10)
}

fn pat(text: &str) -> Pattern {
    Pattern::parse(text, &a10()).unwrap()
}

#[test]
fn multiple_alignments_are_all_found() {
    let sub = pat("d1 d2");
    let sup = pat("d1 d2 d1 d2");
    let alignments: Vec<usize> = sub.alignments_in(&sup).collect();
    assert_eq!(alignments, vec![0, 2]);
}

#[test]
fn equal_length_patterns_subpattern_iff_star_compatible() {
    assert!(pat("d1 * d3").is_subpattern_of(&pat("d1 d2 d3")));
    assert!(!pat("d1 d2 d3").is_subpattern_of(&pat("d1 * d3")));
    assert!(!pat("d1 d4 d3").is_subpattern_of(&pat("d1 d2 d3")));
}

#[test]
fn immediate_subpatterns_trim_both_ends_of_gapped_pattern() {
    // Removing the first symbol of d1 * d2 leaves * d2 -> trimmed to d2.
    let p = pat("d1 * d2");
    let subs = p.immediate_subpatterns();
    assert_eq!(subs.len(), 2);
    assert!(subs.contains(&pat("d2")));
    assert!(subs.contains(&pat("d1")));
}

#[test]
fn multi_character_names_display_with_spaces() {
    let alphabet = Alphabet::new(["alpha", "beta"]).unwrap();
    let p = Pattern::parse("alpha * beta", &alphabet).unwrap();
    assert_eq!(p.display(&alphabet).unwrap(), "alpha * beta");
}

#[test]
fn gapped_support_counts_fixed_length_gaps_only() {
    let alphabet = a10();
    let db = MemorySequences(vec![
        alphabet.encode("d1 d9 d2").unwrap(), // d1 * d2 occurs (gap 1)
        alphabet.encode("d1 d9 d9 d2").unwrap(), // gap 2: does NOT match d1 * d2
    ]);
    let p = pat("d1 * d2");
    assert!((db_support(&p, &db) - 0.5).abs() < 1e-12);
    assert_eq!(
        sequence_support(&p, &alphabet.encode("d1 d9 d9 d2").unwrap()),
        0.0
    );
}

#[test]
fn full_noise_uniform_matrix_is_valid_but_not_normalizable() {
    // alpha = 1: the diagonal is zero; match still computes, normalization
    // correctly refuses.
    let c = CompatibilityMatrix::uniform_noise(4, 1.0).unwrap();
    assert_eq!(c.get(Symbol(0), Symbol(0)), 0.0);
    assert!(c.diagonal_normalized().is_err());
    assert!(c.diagonal_normalized_clamped().is_err());
    // With alpha = 1 a symbol is NEVER observed as itself: the exact text
    // "d0 d1" has match zero, while the flipped "d1 d0" has (1/3)^2.
    let db = MemorySequences(vec![vec![Symbol(1), Symbol(0)]]);
    let p = pat("d0 d1");
    assert!((db_match(&p, &db, &c) - 1.0 / 9.0).abs() < 1e-12);
    let exact = MemorySequences(vec![vec![Symbol(0), Symbol(1)]]);
    assert_eq!(db_match(&p, &exact, &c), 0.0);
}

#[test]
fn figure2_density_counts_zero_entries() {
    let c = CompatibilityMatrix::paper_figure2();
    // 16 non-zero entries out of 25 (2 + 4 + 4 + 4 + 2 per row).
    assert!((c.density() - 16.0 / 25.0).abs() < 1e-12);
}

#[test]
fn mislabel_tail_zero_spread_is_zero() {
    assert_eq!(mislabel_tail(0.01, 0.0, 100), 0.0);
    assert_eq!(SpreadMode::default(), SpreadMode::Restricted);
}

#[test]
fn collapse_order_is_a_permutation_of_levels() {
    for (lo, hi) in [(1usize, 1usize), (1, 2), (2, 9), (5, 20), (1, 64)] {
        let mut order = levels_in_collapse_order(lo, hi);
        assert_eq!(order.len(), hi - lo + 1, "({lo},{hi})");
        order.sort_unstable();
        let expect: Vec<usize> = (lo..=hi).collect();
        assert_eq!(order, expect, "({lo},{hi})");
    }
}

#[test]
fn halfway_of_identical_borders_is_the_border() {
    let p = pat("d1 d2 d3");
    let mids = halfway(std::slice::from_ref(&p), std::slice::from_ref(&p));
    assert_eq!(mids, vec![p]);
}

#[test]
fn implied_provenance_appears_with_tiny_counter_budget() {
    // A strong planted chain with a tiny phase-3 budget: border collapsing
    // probes a mid-level pattern first and resolves its subpatterns by
    // Apriori propagation -> Implied provenance.
    let alphabet = a10();
    let seqs = generate(&GeneratorConfig {
        num_sequences: 120,
        min_len: 12,
        max_len: 16,
        alphabet_size: 10,
        background: Background::Uniform,
        motifs: vec![noisemine::datagen::PlantedMotif::new(
            Pattern::parse("d0 d1 d2 d3 d4 d5", &alphabet).unwrap(),
            0.5,
        )],
        seed: 5,
    });
    let matrix = CompatibilityMatrix::uniform_noise(10, 0.1).unwrap();
    // Tiny sample makes many chain patterns ambiguous; budget 1 forces
    // one-probe-per-scan collapsing with propagation.
    let config = MinerConfig {
        min_match: 0.25,
        delta: 0.2,
        sample_size: 30,
        counters_per_scan: 1,
        space: PatternSpace::contiguous(6),
        seed: 12,
        ..MinerConfig::default()
    };
    let db = MemoryDb::from_sequences(seqs);
    let outcome = mine(&db, &matrix, &config).unwrap();
    let provenances: std::collections::HashSet<_> =
        outcome.frequent.iter().map(|f| f.provenance).collect();
    assert!(
        provenances.contains(&Provenance::Verified),
        "expected probed patterns"
    );
    assert!(
        provenances.contains(&Provenance::Implied),
        "expected Apriori-propagated patterns with a 1-counter budget: {provenances:?}"
    );
}

#[test]
fn disk_writer_preserves_sparse_ids() {
    let path = std::env::temp_dir().join(format!("noisemine-sparse-ids-{}.db", std::process::id()));
    let mut w = DiskDbWriter::create(&path).unwrap();
    w.write_sequence(7, &[Symbol(1)]).unwrap();
    w.write_sequence(99, &[Symbol(2), Symbol(3)]).unwrap();
    let db = w.finish().unwrap();
    let mut ids = Vec::new();
    noisemine::core::matching::SequenceScan::scan(&db, &mut |id, _| ids.push(id));
    assert_eq!(ids, vec![7, 99]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn generator_fixed_length_and_degenerate_weights() {
    let seqs = generate(&GeneratorConfig {
        num_sequences: 10,
        min_len: 7,
        max_len: 7,
        alphabet_size: 4,
        background: Background::Weights(vec![1.0, 0.0, 0.0, 0.0]),
        motifs: Vec::new(),
        seed: 3,
    });
    for s in &seqs {
        assert_eq!(s.len(), 7);
        assert!(s.iter().all(|&x| x == Symbol(0)));
    }
}

#[test]
fn top_k_with_k_larger_than_space() {
    let alphabet = Alphabet::synthetic(3);
    let seqs = vec![alphabet.encode("d0 d1").unwrap()];
    let matrix = CompatibilityMatrix::identity(3);
    let r = mine_top_k(&seqs, &matrix, 100, &PatternSpace::contiguous(2));
    // Only patterns with positive match exist: d0, d1, d0 d1.
    assert_eq!(r.patterns.len(), 3);
    assert_eq!(r.implied_threshold, 0.0);
}

#[test]
fn maxminer_config_default_is_sane() {
    let c = MaxMinerConfig::default();
    assert!(c.lookaheads_per_scan > 0);
    assert!(c.counters_per_scan > 0);
}

#[test]
fn sequence_match_handles_pattern_equal_to_sequence_length() {
    let c = CompatibilityMatrix::paper_figure2();
    let alphabet = Alphabet::synthetic(5);
    let s = alphabet.encode("d0 d1 d2").unwrap();
    let p = Pattern::parse("d0 d1 d2", &alphabet).unwrap();
    let v = sequence_match(&p, &s, &c);
    assert!((v - 0.9 * 0.8 * 0.7).abs() < 1e-12);
}

#[test]
fn miner_on_single_sequence_database() {
    let alphabet = Alphabet::synthetic(4);
    let db = MemoryDb::from_sequences(vec![alphabet.encode("d0 d1 d0 d1").unwrap()]);
    let matrix = CompatibilityMatrix::identity(4);
    let outcome = mine(
        &db,
        &matrix,
        &MinerConfig {
            min_match: 0.9,
            sample_size: 1,
            space: PatternSpace::contiguous(4),
            ..MinerConfig::default()
        },
    )
    .unwrap();
    let patterns = outcome.patterns();
    assert!(patterns.contains(&Pattern::parse("d0 d1 d0 d1", &alphabet).unwrap()));
}

#[test]
fn zero_length_min_match_accepts_everything_reachable() {
    // min_match = 0 is legal: every candidate with positive sample match is
    // frequent; the space bound keeps it finite.
    let alphabet = Alphabet::synthetic(3);
    let db = MemoryDb::from_sequences(vec![alphabet.encode("d0 d1").unwrap()]);
    let matrix = CompatibilityMatrix::identity(3);
    let outcome = mine(
        &db,
        &matrix,
        &MinerConfig {
            min_match: 0.0,
            sample_size: 1,
            space: PatternSpace::contiguous(2),
            ..MinerConfig::default()
        },
    )
    .unwrap();
    // With identity matrix: d0, d1, d0 d1 all have match 1; every other
    // symbol has match 0 which still satisfies min_match = 0.
    assert!(outcome.frequent.len() >= 3);
}
