//! End-to-end integration tests spanning the whole workspace: data
//! generation → noise injection → disk-resident storage → the three-phase
//! miner and every baseline, validated against exact mining and the planted
//! ground truth.

use std::collections::HashSet;

use noisemine::baselines::{mine_levelwise, mine_maxminer, mine_toivonen, MaxMinerConfig};
use noisemine::core::border_collapse::ProbeStrategy;
use noisemine::core::chernoff::SpreadMode;
use noisemine::core::matching::{db_match, MatchMetric, MemorySequences, SequenceScan};
use noisemine::core::miner::{mine, MinerConfig};
use noisemine::core::{CompatibilityMatrix, Pattern, PatternSpace};
use noisemine::datagen::noise::{channel_to_compatibility, partner_channel};
use noisemine::datagen::{apply_channel, generate, Background, GeneratorConfig, PlantedMotif};
use noisemine::seqdb::{DiskDb, MemoryDb};

/// A deterministic noisy workload with one strong planted motif.
fn workload() -> (
    Vec<Vec<noisemine::core::Symbol>>,
    CompatibilityMatrix,
    Pattern,
) {
    let alphabet = noisemine::core::Alphabet::synthetic(12);
    let motif = Pattern::parse("d0 d1 d2 d3 d4 d5", &alphabet).unwrap();
    let standard = generate(&GeneratorConfig {
        num_sequences: 300,
        min_len: 20,
        max_len: 30,
        alphabet_size: 12,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(motif.clone(), 0.6)],
        seed: 99,
    });
    let partners: Vec<Vec<usize>> = (0..12).map(|i| vec![i ^ 1]).collect();
    let channel = partner_channel(12, 0.3, &partners);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let noisy = apply_channel(&standard, &channel, &mut rng);
    let matrix = channel_to_compatibility(&channel)
        .diagonal_normalized_clamped()
        .unwrap();
    (noisy, matrix, motif)
}

fn config(min_match: f64) -> MinerConfig {
    MinerConfig {
        min_match,
        delta: 0.01,
        sample_size: 300, // whole database -> probabilistic result is exact
        counters_per_scan: 200,
        space: PatternSpace::contiguous(8),
        spread_mode: SpreadMode::Restricted,
        probe_strategy: ProbeStrategy::BorderCollapsing,
        seed: 4,
        ..MinerConfig::default()
    }
}

#[test]
fn miner_recovers_planted_motif_from_noise() {
    let (noisy, matrix, motif) = workload();
    let db = MemoryDb::from_sequences(noisy);
    // At alpha = 0.3 with symmetric pairing the motif's expected match is
    // 0.6 * ((1-a) + a^2/(1-a))^6 ~ 0.20; threshold 0.15 leaves margin.
    let outcome = mine(&db, &matrix, &config(0.15)).unwrap();
    assert!(
        outcome.frequent.iter().any(|f| f.pattern == motif),
        "planted motif {motif} not recovered"
    );
    // The motif's subpatterns are frequent too (Apriori).
    let set: HashSet<Pattern> = outcome.patterns().into_iter().collect();
    for sub in motif.immediate_subpatterns() {
        if sub.max_gap() == 0 {
            assert!(set.contains(&sub), "missing subpattern {sub}");
        }
    }
}

#[test]
fn full_sample_three_phase_equals_exact_levelwise() {
    let (noisy, matrix, _) = workload();
    let db = MemoryDb::from_sequences(noisy);
    let cfg = config(0.15);
    let outcome = mine(&db, &matrix, &cfg).unwrap();
    let exact = mine_levelwise(
        &db,
        &MatchMetric { matrix: &matrix },
        12,
        cfg.min_match,
        &cfg.space,
        usize::MAX,
    );
    let probabilistic: HashSet<Pattern> = outcome.patterns().into_iter().collect();
    assert_eq!(
        probabilistic,
        exact.pattern_set(),
        "with the sample covering the whole database the probabilistic miner must be exact"
    );
}

#[test]
fn all_four_miners_agree_on_disk_database() {
    let (noisy, matrix, _) = workload();
    let path = std::env::temp_dir().join(format!("noisemine-e2e-{}.db", std::process::id()));
    let db = DiskDb::create_from(&path, noisy.iter().map(Vec::as_slice)).unwrap();
    let cfg = config(0.2);

    let ours = mine(&db, &matrix, &cfg).unwrap();
    let exact = mine_levelwise(
        &db,
        &MatchMetric { matrix: &matrix },
        12,
        cfg.min_match,
        &cfg.space,
        usize::MAX,
    );
    let maxminer = mine_maxminer(
        &db,
        &MatchMetric { matrix: &matrix },
        12,
        cfg.min_match,
        &cfg.space,
        &MaxMinerConfig::default(),
    );
    let toivonen = mine_toivonen(&db, &matrix, &cfg).unwrap();

    let ours_set: HashSet<Pattern> = ours.patterns().into_iter().collect();
    let toivonen_set: HashSet<Pattern> = toivonen
        .frequent
        .iter()
        .map(|f| f.pattern.clone())
        .collect();
    assert_eq!(ours_set, exact.pattern_set(), "three-phase vs exact");
    assert_eq!(
        maxminer.pattern_set(),
        exact.pattern_set(),
        "max-miner vs exact"
    );
    assert_eq!(toivonen_set, exact.pattern_set(), "toivonen vs exact");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn scan_accounting_is_consistent_across_substrates() {
    let (noisy, matrix, _) = workload();
    let cfg = config(0.2);

    let mem = MemoryDb::from_sequences(noisy.clone());
    let outcome_mem = mine(&mem, &matrix, &cfg).unwrap();
    assert_eq!(mem.scans_performed(), outcome_mem.stats.db_scans);

    let path = std::env::temp_dir().join(format!("noisemine-scan-{}.db", std::process::id()));
    let disk = DiskDb::create_from(&path, noisy.iter().map(Vec::as_slice)).unwrap();
    let outcome_disk = mine(&disk, &matrix, &cfg).unwrap();
    assert_eq!(disk.scans_performed(), outcome_disk.stats.db_scans);

    // Same data, same config -> identical results regardless of substrate.
    assert_eq!(outcome_mem.patterns(), outcome_disk.patterns());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn tighter_counter_budget_costs_more_scans_not_different_results() {
    let (noisy, matrix, _) = workload();
    let db = MemoryDb::from_sequences(noisy);
    let mut generous = config(0.18);
    generous.counters_per_scan = 100_000;
    let mut tight = config(0.18);
    tight.counters_per_scan = 10;

    let a = mine(&db, &matrix, &generous).unwrap();
    let b = mine(&db, &matrix, &tight).unwrap();
    assert_eq!(a.patterns(), b.patterns());
    assert!(b.stats.db_scans >= a.stats.db_scans);
}

#[test]
fn disk_round_trip_preserves_match_values() {
    let (noisy, matrix, motif) = workload();
    let mem = MemorySequences(noisy.clone());
    let path = std::env::temp_dir().join(format!("noisemine-rt-{}.db", std::process::id()));
    let disk = DiskDb::create_from(&path, noisy.iter().map(Vec::as_slice)).unwrap();
    assert_eq!(mem.num_sequences(), disk.num_sequences());
    let m1 = db_match(&motif, &mem, &matrix);
    let m2 = db_match(&motif, &disk, &matrix);
    assert!((m1 - m2).abs() < 1e-15);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn border_collapsing_and_levelwise_verification_agree() {
    let (noisy, matrix, _) = workload();
    let db = MemoryDb::from_sequences(noisy);
    let mut bc = config(0.16);
    bc.counters_per_scan = 25;
    let mut lw = bc.clone();
    lw.probe_strategy = ProbeStrategy::LevelWise;

    let a = mine(&db, &matrix, &bc).unwrap();
    let b = mine(&db, &matrix, &lw).unwrap();
    assert_eq!(a.patterns(), b.patterns());
}

#[test]
fn noise_free_identity_mining_equals_support_semantics() {
    // On the standard database with the identity matrix, the miner's output
    // is exactly the support-frequent patterns.
    let alphabet = noisemine::core::Alphabet::synthetic(8);
    let motif = Pattern::parse("d0 d1 d2", &alphabet).unwrap();
    let standard = generate(&GeneratorConfig {
        num_sequences: 200,
        min_len: 10,
        max_len: 16,
        alphabet_size: 8,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(motif.clone(), 0.5)],
        seed: 1,
    });
    let id = CompatibilityMatrix::identity(8);
    let db = MemoryDb::from_sequences(standard);
    let cfg = MinerConfig {
        min_match: 0.4,
        sample_size: 200,
        space: PatternSpace::contiguous(5),
        ..MinerConfig::default()
    };
    let outcome = mine(&db, &id, &cfg).unwrap();
    let exact = mine_levelwise(
        &db,
        &noisemine::core::matching::SupportMetric,
        8,
        cfg.min_match,
        &cfg.space,
        usize::MAX,
    );
    let ours: HashSet<Pattern> = outcome.patterns().into_iter().collect();
    assert_eq!(ours, exact.pattern_set());
    assert!(ours.contains(&motif));
}
