//! Observability contract tests: enabling the metrics registry must never
//! change mining output (instrumentation is observe-only), and a
//! planted-pattern run must populate the documented counters — in
//! particular `core_collapse_db_scans`, the paper quantity border
//! collapsing (Algorithm 4.3) exists to minimize.

use noisemine::core::border_collapse::ProbeStrategy;
use noisemine::core::chernoff::SpreadMode;
use noisemine::core::miner::{mine, MineOutcome, MinerConfig};
use noisemine::core::{CompatibilityMatrix, Pattern, PatternSpace};
use noisemine::datagen::noise::{channel_to_compatibility, partner_channel};
use noisemine::datagen::{apply_channel, generate, Background, GeneratorConfig, PlantedMotif};
use noisemine::seqdb::MemoryDb;

/// A deterministic noisy workload with one strong planted motif, sized so
/// that phase 2 leaves ambiguous patterns for phase 3 to verify (the
/// sample is a strict subset of the database).
fn workload() -> (MemoryDb, CompatibilityMatrix) {
    let alphabet = noisemine::core::Alphabet::synthetic(12);
    let motif = Pattern::parse("d0 d1 d2 d3 d4", &alphabet).unwrap();
    let standard = generate(&GeneratorConfig {
        num_sequences: 400,
        min_len: 20,
        max_len: 30,
        alphabet_size: 12,
        background: Background::Uniform,
        motifs: vec![PlantedMotif::new(motif, 0.6)],
        seed: 77,
    });
    let partners: Vec<Vec<usize>> = (0..12).map(|i| vec![i ^ 1]).collect();
    let channel = partner_channel(12, 0.3, &partners);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let noisy = apply_channel(&standard, &channel, &mut rng);
    let matrix = channel_to_compatibility(&channel)
        .diagonal_normalized_clamped()
        .unwrap();
    (MemoryDb::from_sequences(noisy), matrix)
}

fn config() -> MinerConfig {
    MinerConfig {
        min_match: 0.25,
        delta: 0.01,
        sample_size: 150, // strict subset -> a real Chernoff band
        counters_per_scan: 500,
        space: PatternSpace::contiguous(8),
        spread_mode: SpreadMode::Restricted,
        probe_strategy: ProbeStrategy::BorderCollapsing,
        seed: 13,
        ..MinerConfig::default()
    }
}

/// Canonical rendering of an outcome for byte-level comparison.
fn render(outcome: &MineOutcome) -> String {
    let mut lines: Vec<String> = outcome
        .frequent
        .iter()
        .map(|f| format!("{:?} {:.12}", f.pattern, f.match_estimate))
        .collect();
    lines.sort();
    lines.join("\n")
}

#[test]
fn instrumentation_never_changes_output_and_counters_are_live() {
    let (db, matrix) = workload();
    let cfg = config();

    // Baseline run. The registry enable flag is process-global and another
    // test binary cannot interfere (each integration test is its own
    // process), but within this test the order matters: first without.
    assert!(
        !noisemine::obs::enabled(),
        "registry must start disabled in a fresh process"
    );
    let plain = mine(&db, &matrix, &cfg).expect("mine (metrics off)");

    noisemine::obs::enable();
    let instrumented = mine(&db, &matrix, &cfg).expect("mine (metrics on)");

    assert_eq!(
        render(&plain),
        render(&instrumented),
        "enabling metrics changed the mined pattern set"
    );
    assert_eq!(plain.stats.db_scans, instrumented.stats.db_scans);

    // The planted workload must light up the documented counters.
    let snap = noisemine::obs::global().snapshot();
    let scans = snap
        .counter_value("core_collapse_db_scans")
        .expect("core_collapse_db_scans registered");
    assert!(
        scans >= 1,
        "expected at least one collapse scan, got {scans}"
    );
    assert!(
        snap.counter_value("core_candidates_frequent_total")
            .unwrap_or(0)
            >= 1,
        "no frequent candidates recorded"
    );
    let eps = snap.gauge_value("core_chernoff_epsilon_max").unwrap_or(0.0);
    assert!(eps > 0.0, "Chernoff epsilon gauge not set");
    let spread = snap
        .gauge_value("core_restricted_spread_min")
        .unwrap_or(0.0);
    assert!(
        spread > 0.0 && spread <= 1.0,
        "restricted spread out of range: {spread}"
    );
    let (count, sum) = snap
        .histogram_totals("core_phase1_seconds")
        .expect("phase-1 span recorded");
    // Only the second mine ran with the registry enabled, so exactly one
    // span per phase.
    assert_eq!(count, 1, "expected one instrumented phase-1 span");
    assert!(sum > 0.0);
    let seqs = snap
        .counter_value("core_scan_sequences_total")
        .expect("scan sequence counter registered");
    // One phase-1 pass plus `db_scans - 1` collapse passes over 400
    // sequences each (stats.db_scans counts phase 1 too).
    assert_eq!(
        seqs,
        400 * instrumented.stats.db_scans as u64,
        "scan volume disagrees with the miner's own scan statistics"
    );

    // Snapshot rendering is deterministic and both formats carry the data.
    let snap2 = noisemine::obs::global().snapshot();
    assert_eq!(snap.to_json(), snap2.to_json());
    assert!(snap.to_prometheus().contains("core_collapse_db_scans"));
}
