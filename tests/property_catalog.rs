//! Seeded property suite for the model catalog's adoption contract:
//! whatever mixture of valid, corrupt, partial, and foreign files a
//! tenant's directory holds — and in whatever order they were written —
//! adoption always selects the **highest valid version**, and never
//! adopts anything else.

mod common;

use common::run_cases;
use noisemine::core::lattice::Border;
use noisemine::core::miner::{FrequentPattern, MineOutcome, MineStats, Provenance};
use noisemine::core::{Alphabet, CompatibilityMatrix, Pattern, PatternModel, Symbol};
use noisemine::serve::{model_bytes, Catalog, ModelRegistry};
use rand::rngs::StdRng;
use rand::Rng;

fn sample_model(version: u64) -> PatternModel {
    let alphabet = Alphabet::synthetic(4);
    let matrix = CompatibilityMatrix::uniform_noise(4, 0.1).unwrap();
    let outcome = MineOutcome {
        frequent: vec![FrequentPattern {
            pattern: Pattern::contiguous(&[Symbol(0), Symbol(1)]).unwrap(),
            match_estimate: 0.5,
            provenance: Provenance::Verified,
        }],
        border: Border::default(),
        symbol_match: vec![0.4; 4],
        stats: MineStats::default(),
    };
    PatternModel::from_outcome(&outcome, &alphabet, &matrix, 0.1, version)
}

/// One randomly planted catalog entry.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Entry {
    /// A fully valid artifact at this version.
    Valid(u64),
    /// A corrupt artifact at this version (random byte damaged).
    Corrupt(u64),
    /// A truncated artifact at this version (torn write).
    Truncated(u64),
    /// A `.tmp` file (writer died before rename).
    Partial(u64),
    /// A foreign file the scanner must not even see.
    Foreign,
}

fn plant(cat: &Catalog, tenant: &str, entry: Entry, rng: &mut StdRng) {
    let dir = cat.root().join(tenant);
    std::fs::create_dir_all(&dir).unwrap();
    match entry {
        Entry::Valid(v) => {
            cat.write(tenant, &sample_model(v)).unwrap();
        }
        Entry::Corrupt(v) => {
            let mut bytes = model_bytes(&sample_model(v));
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u8);
            std::fs::write(cat.model_path(tenant, v), bytes).unwrap();
        }
        Entry::Truncated(v) => {
            let bytes = model_bytes(&sample_model(v));
            let len = rng.gen_range(0..bytes.len());
            std::fs::write(cat.model_path(tenant, v), &bytes[..len]).unwrap();
        }
        Entry::Partial(v) => {
            let bytes = model_bytes(&sample_model(v));
            let len = rng.gen_range(0..=bytes.len());
            std::fs::write(dir.join(format!("{v}.nmmodel.tmp")), &bytes[..len]).unwrap();
        }
        Entry::Foreign => {
            let names = ["README.md", "x9.nmmodel", "007.nmmodel", ".hidden", "12"];
            let name = names[rng.gen_range(0..names.len())];
            std::fs::write(dir.join(name), b"not a model").unwrap();
        }
    }
}

/// Adoption always lands on the highest *valid* version — across random
/// version sets, random corruption mixtures, and random write order.
#[test]
fn adoption_selects_highest_valid_version() {
    let mut case_id = 0u64;
    run_cases(40, |rng| {
        case_id += 1;
        let root = std::env::temp_dir().join(format!(
            "noisemine-propcat-{}-{case_id}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        let cat = Catalog::new(&root);

        // Distinct versions, then a random disposition for each — written
        // in a shuffled order so directory-entry creation order varies.
        let count = rng.gen_range(1..8usize);
        let mut versions: Vec<u64> = Vec::new();
        while versions.len() < count {
            let v = rng.gen_range(1..50u64);
            if !versions.contains(&v) {
                versions.push(v);
            }
        }
        let mut entries: Vec<Entry> = versions
            .iter()
            .map(|&v| match rng.gen_range(0..4u8) {
                0 => Entry::Valid(v),
                1 => Entry::Corrupt(v),
                2 => Entry::Truncated(v),
                _ => Entry::Partial(v),
            })
            .collect();
        for _ in 0..rng.gen_range(0..3usize) {
            entries.push(Entry::Foreign);
        }
        // Fisher–Yates: write order (hence inode/creation order) random.
        for i in (1..entries.len()).rev() {
            let j = rng.gen_range(0..=i);
            entries.swap(i, j);
        }
        for &entry in &entries {
            plant(&cat, "t", entry, rng);
        }

        let expected = entries
            .iter()
            .filter_map(|e| match e {
                Entry::Valid(v) => Some(*v),
                _ => None,
            })
            .max();

        // The scan primitive agrees with the expectation…
        let scanned = cat.scan_tenant("t", None).newest_valid.map(|(v, _)| v);
        assert_eq!(
            scanned, expected,
            "scan picked {scanned:?}, expected {expected:?} from {entries:?}"
        );

        // …and so does a sync against a fresh registry: either the highest
        // valid version is adopted, or the tenant is declared modelless.
        let registry = ModelRegistry::new(0.0);
        let report = cat.sync(&registry);
        assert_eq!(
            registry.current_version("t"),
            expected,
            "sync adopted {:?}, expected {expected:?} from {entries:?}",
            registry.current_version("t")
        );
        match expected {
            Some(v) => assert_eq!(report.adopted, vec![("t".to_string(), v)]),
            None => assert_eq!(report.modelless, vec!["t".to_string()]),
        }

        // Re-syncing is idempotent: nothing new to adopt, no downgrade.
        let again = cat.sync(&registry);
        assert!(again.adopted.is_empty(), "{again:?}");
        assert_eq!(registry.current_version("t"), expected);

        std::fs::remove_dir_all(&root).ok();
    });
}

/// The floor short-circuit never changes the outcome: scanning with the
/// currently served version as floor either finds the same strictly newer
/// artifact a full scan finds, or nothing.
#[test]
fn floor_short_circuit_is_equivalent_for_adoption() {
    let mut case_id = 0u64;
    run_cases(30, |rng| {
        case_id += 1;
        let root = std::env::temp_dir().join(format!(
            "noisemine-propfloor-{}-{case_id}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        let cat = Catalog::new(&root);

        for _ in 0..rng.gen_range(1..6usize) {
            let v = rng.gen_range(1..30u64);
            let entry = if rng.gen_range(0..2u8) == 0 {
                Entry::Valid(v)
            } else {
                Entry::Corrupt(v)
            };
            plant(&cat, "t", entry, rng);
        }
        let floor = rng.gen_range(0..30u64);
        let full = cat.scan_tenant("t", None).newest_valid.map(|(v, _)| v);
        let floored = cat
            .scan_tenant("t", Some(floor))
            .newest_valid
            .map(|(v, _)| v);
        match full {
            Some(v) if v > floor => assert_eq!(floored, Some(v)),
            _ => assert_eq!(floored, None, "floor {floor} full {full:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    });
}
