//! Property tests for the positional symbol index (seeded harness, see
//! `common`).
//!
//! The index's whole contract is *bit-identity*: a [`SkipPlan`] may only
//! skip sequences whose match is provably exactly `0.0` (a concrete probe
//! symbol with no compatible observation, or a sequence shorter than the
//! probe), and every skipped sequence still counts in the Def-3.7
//! denominator, so the indexed scan returns the exact `Vec<f64>` of the
//! full scan — at any thread count, under either kernel, for any matrix
//! sparsity. These suites drive that contract on random sparse matrices
//! (the regime where skips actually fire), wildcard-heavy and gapped
//! batches, and the full three-phase miner, then cover the NMIDX sidecar's
//! persistence story: build/load round-trips through format v1 and v2
//! databases, stale-sidecar detection after the database changes
//! underneath, and binding to a quarantined view of a corrupted database.

mod common;

use common::{random_matrix, random_pattern, random_sequences, run_cases};
use noisemine::core::matching::{sequence_match, try_db_match_many_kernel_indexed, SequenceScan};
use noisemine::core::miner::{mine, MinerConfig};
use noisemine::core::{
    CompatibilityMatrix, IndexMode, MatchKernel, Pattern, PatternElem, SkipPlan, Symbol,
    SymbolIndex, SymbolIndexBuilder,
};
use noisemine::datagen::sparse_random_matrix;
use noisemine::seqdb::{load_validated, sidecar_path, DiskDb, DiskDbWriter, FaultPolicy, MemoryDb};
use rand::rngs::StdRng;
use rand::Rng;

const M: usize = 8;
const CASES: usize = 64;

/// A matrix biased toward sparsity — the regime the index exists for.
/// Identity and sparse matrices make skips fire; the occasional dense
/// matrix checks that the plan degrades to "visit everything" without
/// changing a bit.
fn random_index_matrix(rng: &mut StdRng, m: usize) -> CompatibilityMatrix {
    match rng.gen_range(0..4u8) {
        0 => CompatibilityMatrix::identity(m),
        1 | 2 => sparse_random_matrix(m, rng.gen_range(0.0..0.4), 0.7, rng.gen()),
        _ => random_matrix(rng, m, 0.01),
    }
}

/// A random probe batch mixing the short wildcard patterns of the common
/// generator with longer wildcard-heavy ones (concrete endpoints, up to
/// 60% `*` inside) — wildcards never constrain the plan, so heavy use
/// stresses the "length filter only" degenerate case.
fn random_batch(rng: &mut StdRng, m: usize, count: usize) -> Vec<Pattern> {
    (0..count)
        .map(|_| {
            if rng.gen_bool(0.5) {
                random_pattern(rng, m)
            } else {
                let len = rng.gen_range(2..10usize);
                let mut elems: Vec<PatternElem> = (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.6) {
                            PatternElem::Any
                        } else {
                            PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)))
                        }
                    })
                    .collect();
                let n = elems.len();
                elems[0] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
                elems[n - 1] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
                Pattern::new(elems).expect("endpoints are concrete")
            }
        })
        .collect()
}

fn build_index(sequences: &[Vec<Symbol>], m: usize) -> SymbolIndex {
    let mut builder = SymbolIndexBuilder::new(m);
    for seq in sequences {
        builder.add_sequence(seq);
    }
    builder.finish()
}

fn assert_bit_identical(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: pattern {i} diverged: indexed {g:e} vs full {w:e}"
        );
    }
}

/// The core contract: the indexed scan returns exactly the full scan's
/// bits for random sparse matrices and wildcard-heavy batches, under both
/// kernels, at one worker and at four.
#[test]
fn indexed_scan_is_bit_identical_to_full_scan() {
    run_cases(CASES, |rng| {
        let sequences = random_sequences(rng, M, 25, 1, 16);
        let db = MemoryDb::from_sequences(sequences.clone());
        let index = build_index(&sequences, M);
        let count = rng.gen_range(1..16usize);
        let patterns = random_batch(rng, M, count);
        let matrix = random_index_matrix(rng, M);
        let plan = SkipPlan::build(&index, &patterns, &matrix);
        let reference =
            try_db_match_many_kernel_indexed(&patterns, &db, &matrix, 1, MatchKernel::Naive, None)
                .unwrap();
        for kernel in [MatchKernel::Naive, MatchKernel::Trie] {
            for threads in [1, 4] {
                let got = try_db_match_many_kernel_indexed(
                    &patterns,
                    &db,
                    &matrix,
                    threads,
                    kernel,
                    Some(&plan),
                )
                .unwrap();
                assert_bit_identical(
                    &got,
                    &reference,
                    &format!("{} @ {threads} thread(s)", kernel.name()),
                );
            }
        }
    });
}

/// Soundness, stated directly: the plan never skips a sequence whose true
/// match against *any* probe in the batch is non-zero. (The converse is
/// allowed — a visited sequence may still match at 0.0; that is a false
/// positive the scan resolves.)
#[test]
fn plan_never_skips_a_matching_sequence() {
    run_cases(CASES, |rng| {
        let sequences = random_sequences(rng, M, 25, 1, 16);
        let index = build_index(&sequences, M);
        let count = rng.gen_range(1..12usize);
        let patterns = random_batch(rng, M, count);
        let matrix = random_index_matrix(rng, M);
        let plan = SkipPlan::build(&index, &patterns, &matrix);
        for (ordinal, seq) in sequences.iter().enumerate() {
            let best = patterns
                .iter()
                .map(|p| sequence_match(p, seq, &matrix))
                .fold(0.0f64, f64::max);
            if best > 0.0 {
                assert!(
                    plan.is_candidate(ordinal),
                    "sequence {ordinal} matches at {best:e} but the plan skipped it"
                );
            }
        }
    });
}

/// Ordinals beyond the index's coverage are always candidates — an index
/// built over a shorter prefix of the database (appends since build) can
/// only lose skips, never answers.
#[test]
fn ordinals_beyond_coverage_are_candidates() {
    run_cases(24, |rng| {
        let sequences = random_sequences(rng, M, 25, 2, 16);
        let covered = rng.gen_range(1..sequences.len());
        let index = build_index(&sequences[..covered], M);
        let count = rng.gen_range(1..8usize);
        let patterns = random_batch(rng, M, count);
        let matrix = random_index_matrix(rng, M);
        let plan = SkipPlan::build(&index, &patterns, &matrix);
        for ordinal in covered..sequences.len() + 3 {
            assert!(
                plan.is_candidate(ordinal),
                "uncovered ordinal {ordinal} must be a candidate (coverage {covered})"
            );
        }
    });
}

/// The index is purely operational: the full three-phase miner returns the
/// same frequent patterns with the same match-estimate bits whether the
/// index is off or built-and-used.
#[test]
fn miner_output_identical_with_index() {
    run_cases(24, |rng| {
        let db = MemoryDb::from_sequences(random_sequences(rng, M, 10, 3, 12));
        // Sparse matrices only: they are the regime where the plan actually
        // skips (the scan-level suite already covers dense matrices), and a
        // dense matrix with a low threshold makes the *miner's* frontier
        // explode — a cost property unrelated to the index. The pattern
        // space is kept small for the same reason: with a handful of
        // sequences the Chernoff band is wide and phase 2 cannot prune, so
        // the sample lattice enumerates most of the space.
        let matrix = if rng.gen_bool(0.4) {
            CompatibilityMatrix::identity(M)
        } else {
            sparse_random_matrix(M, rng.gen_range(0.0..0.3), 0.8, rng.gen())
        };
        let min_match = rng.gen_range(0.15..0.5);
        let max_gap = rng.gen_range(0..2usize);
        let cfg = |index| MinerConfig {
            min_match,
            delta: 0.05,
            sample_size: db.num_sequences(),
            space: noisemine::core::PatternSpace::new(max_gap, 4).expect("valid space"),
            seed: 7,
            index,
            ..MinerConfig::default()
        };
        let off = mine(&db, &matrix, &cfg(IndexMode::Off)).unwrap();
        let on = mine(&db, &matrix, &cfg(IndexMode::Build)).unwrap();
        assert_eq!(
            off.frequent.len(),
            on.frequent.len(),
            "pattern count diverged"
        );
        for (a, b) in off.frequent.iter().zip(&on.frequent) {
            assert_eq!(a.pattern, b.pattern, "pattern set diverged");
            assert!(
                a.match_estimate.to_bits() == b.match_estimate.to_bits(),
                "{}: estimate diverged: {:e} vs {:e}",
                a.pattern,
                a.match_estimate,
                b.match_estimate
            );
        }
        assert_eq!(
            off.border.elements(),
            on.border.elements(),
            "border diverged"
        );
    });
}

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "noisemine-prop-index-{}-{name}-{case}.nmdb",
        std::process::id()
    ))
}

/// The NMIDX sidecar round-trips through both database formats: build,
/// persist, load-validated returns the identical index (v2 binds to the
/// whole-file checksum; v1 has none and binds to length + count).
#[test]
fn sidecar_round_trips_through_v1_and_v2_databases() {
    let mut case = 0u64;
    run_cases(24, |rng| {
        case += 1;
        let sequences = random_sequences(rng, M, 25, 1, 16);
        for v1 in [false, true] {
            let path = tmp(if v1 { "v1" } else { "v2" }, case);
            let mut w = if v1 {
                DiskDbWriter::create_v1(&path).unwrap()
            } else {
                DiskDbWriter::create(&path).unwrap()
            };
            for (i, seq) in sequences.iter().enumerate() {
                w.write_sequence(i as u64, seq).unwrap();
            }
            let db = w.finish().unwrap();
            let built = noisemine::seqdb::index::ensure_index(&db, M).unwrap();
            assert_eq!(built.num_sequences(), sequences.len());
            let loaded = load_validated(&db)
                .unwrap()
                .expect("freshly built sidecar must validate");
            assert_eq!(loaded, built, "sidecar round-trip changed the index");
            std::fs::remove_file(sidecar_path(&path)).ok();
            std::fs::remove_file(&path).ok();
        }
    });
}

/// Rewriting the database underneath its sidecar — or corrupting the
/// sidecar itself — must be detected: `load_validated` reports "no usable
/// index" rather than serving stale postings.
#[test]
fn stale_or_corrupt_sidecar_is_detected() {
    let mut case = 0u64;
    run_cases(24, |rng| {
        case += 1;
        let path = tmp("stale", case);
        let sequences = random_sequences(rng, M, 25, 2, 16);
        let db = DiskDb::create_from(&path, sequences.iter().map(Vec::as_slice)).unwrap();
        noisemine::seqdb::index::ensure_index(&db, M).unwrap();

        // Rewrite the database with different contents: the old sidecar no
        // longer describes the file and must be rejected.
        let mut changed = sequences.clone();
        changed.push(vec![Symbol(0); rng.gen_range(1..20usize)]);
        let db2 = DiskDb::create_from(&path, changed.iter().map(Vec::as_slice)).unwrap();
        assert!(
            load_validated(&db2).unwrap().is_none(),
            "sidecar for the old database contents must read as stale"
        );

        // Rebuild for the new contents, then corrupt one sidecar byte: the
        // whole-file checksum must reject it (again as "rebuild", not an
        // error).
        noisemine::seqdb::index::ensure_index(&db2, M).unwrap();
        let sp = sidecar_path(&path);
        let mut bytes = std::fs::read(&sp).unwrap();
        let target = bytes.len() / 2;
        bytes[target] ^= 0x40;
        std::fs::write(&sp, &bytes).unwrap();
        assert!(
            load_validated(&db2).unwrap().is_none(),
            "corrupted sidecar must read as stale, not load"
        );
        std::fs::remove_file(sp).ok();
        std::fs::remove_file(&path).ok();
    });
}

/// Quarantine interplay: a sidecar built over the pristine database is
/// stale for a quarantined view of the corrupted file (different survivor
/// set), and the rebuilt sidecar binds to that view — covering exactly the
/// surviving sequences.
#[test]
fn sidecar_binds_to_the_quarantined_view() {
    let mut case = 0u64;
    run_cases(12, |rng| {
        case += 1;
        let path = tmp("quarantine", case);
        // Enough payload that a mid-file byte flip lands inside a record.
        let sequences: Vec<Vec<Symbol>> = (0..24)
            .map(|_| {
                (0..rng.gen_range(12..25usize))
                    .map(|_| Symbol(rng.gen_range(0..M as u16)))
                    .collect()
            })
            .collect();
        let db = DiskDb::create_from(&path, sequences.iter().map(Vec::as_slice)).unwrap();
        noisemine::seqdb::index::ensure_index(&db, M).unwrap();
        drop(db);

        // Flip a byte in the middle of the file: some record's checksum now
        // fails and the quarantine census drops it.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() / 2;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let db = DiskDb::open_with_policy(&path, FaultPolicy::Quarantine).unwrap();
        assert!(
            !db.quarantined().is_empty(),
            "mid-file corruption should quarantine at least one record"
        );
        assert!(
            load_validated(&db).unwrap().is_none(),
            "pristine-view sidecar must be stale for the quarantined view"
        );
        let rebuilt = noisemine::seqdb::index::ensure_index(&db, M).unwrap();
        assert_eq!(
            rebuilt.num_sequences(),
            db.num_sequences(),
            "rebuilt sidecar must cover exactly the surviving sequences"
        );
        // A second handle with the same policy sees the same census and
        // accepts the rebuilt sidecar.
        let again = DiskDb::open_with_policy(&path, FaultPolicy::Quarantine).unwrap();
        assert_eq!(
            load_validated(&again).unwrap().as_ref(),
            Some(&rebuilt),
            "deterministic census must validate the quarantined-view sidecar"
        );
        std::fs::remove_file(sidecar_path(&path)).ok();
        std::fs::remove_file(&path).ok();
    });
}
