//! Property-based tests of the model's core invariants (seeded harness).
//!
//! These exercise the claims of Section 3 on *random* patterns, sequences,
//! and compatibility matrices — not just the worked examples:
//!
//! - Claim 3.1/3.2 (Apriori): subpatterns match at least as strongly;
//! - identity matrix ⇒ match ≡ support (observation 3);
//! - total noise (all entries `1/m`) ⇒ all k-patterns have equal match;
//! - the restricted spread bounds every pattern's match (Claim 4.2);
//! - halfway patterns lie between their endpoints (Algorithm 4.4);
//! - sequential sampling returns exactly `min(n, N)` distinct sequences;
//! - the parallel block scan is bit-identical to the serial one at every
//!   thread count, and stream ingestion reproduces batch phase 1 exactly.

mod common;

use common::{random_matrix, random_pattern, random_sequence, random_sequences, run_cases};
use noisemine::core::chernoff::restricted_spread;
use noisemine::core::matching::{
    db_match, db_support, sequence_match, symbol_db_match, MemorySequences,
};
use noisemine::core::miner::{mine, phase1_threads, MinerConfig};
use noisemine::core::{CompatibilityMatrix, Pattern, PatternSpace, Symbol};
use noisemine::seqdb::{sequential_sample, MemoryDb};
use noisemine::stream::StreamState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const M: usize = 6;
const CASES: usize = 128;

/// Claim 3.1: the match of a pattern never exceeds the match of any of
/// its (immediate) subpatterns, in any sequence.
#[test]
fn apriori_on_sequences() {
    run_cases(CASES, |rng| {
        let pattern = random_pattern(rng, M);
        let seq = random_sequence(rng, M, 20);
        let matrix = random_matrix(rng, M, 0.01);
        let sup_match = sequence_match(&pattern, &seq, &matrix);
        for sub in pattern.immediate_subpatterns() {
            let sub_match = sequence_match(&sub, &seq, &matrix);
            assert!(
                sub_match >= sup_match - 1e-12,
                "subpattern {sub} matches {sub_match} < superpattern {pattern} {sup_match}"
            );
        }
    });
}

/// Claim 3.2: Apriori carries over to whole databases.
#[test]
fn apriori_on_databases() {
    run_cases(CASES, |rng| {
        let pattern = random_pattern(rng, M);
        let db = MemorySequences(random_sequences(rng, M, 15, 1, 12));
        let matrix = random_matrix(rng, M, 0.01);
        let sup = db_match(&pattern, &db, &matrix);
        for sub in pattern.immediate_subpatterns() {
            assert!(db_match(&sub, &db, &matrix) >= sup - 1e-12);
        }
    });
}

/// Identity matrix: match degenerates to support exactly.
#[test]
fn identity_matrix_means_support() {
    run_cases(CASES, |rng| {
        let pattern = random_pattern(rng, M);
        let db = MemorySequences(random_sequences(rng, M, 15, 1, 12));
        let id = CompatibilityMatrix::identity(M);
        let m = db_match(&pattern, &db, &id);
        let s = db_support(&pattern, &db);
        assert!((m - s).abs() < 1e-12, "match {m} != support {s}");
    });
}

/// Total noise: every pattern with the same number of concrete symbols
/// has exactly the same match in every sufficiently long sequence.
#[test]
fn total_noise_flattens_all_patterns() {
    run_cases(CASES, |rng| {
        let db = MemorySequences(random_sequences(rng, M, 15, 1, 8));
        let (a, b) = (rng.gen_range(0..M as u16), rng.gen_range(0..M as u16));
        let (c, d) = (rng.gen_range(0..M as u16), rng.gen_range(0..M as u16));
        let flat = CompatibilityMatrix::total_noise(M);
        let p1 = Pattern::contiguous(&[Symbol(a), Symbol(b)]).unwrap();
        let p2 = Pattern::contiguous(&[Symbol(c), Symbol(d)]).unwrap();
        assert!((db_match(&p1, &db, &flat) - db_match(&p2, &db, &flat)).abs() < 1e-12);
    });
}

/// Claim 4.2: a pattern's database match never exceeds its restricted
/// spread (the minimum of its symbols' matches).
#[test]
fn restricted_spread_bounds_match() {
    run_cases(CASES, |rng| {
        let pattern = random_pattern(rng, M);
        let db = MemorySequences(random_sequences(rng, M, 15, 1, 12));
        let matrix = random_matrix(rng, M, 0.01);
        let symbol_match = symbol_db_match(&db, &matrix);
        let spread = restricted_spread(&pattern, &symbol_match);
        let value = db_match(&pattern, &db, &matrix);
        assert!(
            value <= spread + 1e-12,
            "match {value} exceeds restricted spread {spread} for {pattern}"
        );
    });
}

/// Match is always a probability-like value in [0, 1].
#[test]
fn match_is_bounded() {
    run_cases(CASES, |rng| {
        let pattern = random_pattern(rng, M);
        let seq = random_sequence(rng, M, 20);
        let matrix = random_matrix(rng, M, 0.01);
        let v = sequence_match(&pattern, &seq, &matrix);
        assert!((0.0..=1.0).contains(&v));
    });
}

/// Algorithm 4.4: every halfway pattern between `P` and a superpattern
/// extension of `P` is a superpattern of `P` and a subpattern of the
/// extension, with the right number of concrete symbols.
#[test]
fn halfway_patterns_are_between() {
    run_cases(CASES, |rng| {
        let pattern = random_pattern(rng, M);
        let mut sup = pattern.clone();
        for _ in 0..rng.gen_range(1..4usize) {
            let gap = rng.gen_range(0..2usize);
            let sym = Symbol(rng.gen_range(0..M as u16));
            sup = sup.extend(gap, sym);
        }
        let k1 = pattern.non_eternal_count();
        let k2 = sup.non_eternal_count();
        let mid = (k1 + k2).div_ceil(2);
        for candidate in pattern.between(&sup, mid) {
            assert_eq!(candidate.non_eternal_count(), mid);
            assert!(pattern.is_subpattern_of(&candidate));
            assert!(candidate.is_subpattern_of(&sup));
        }
    });
}

/// Sequential sampling returns exactly `min(n, N)` sequences, in scan
/// order, without duplication of positions.
#[test]
fn sequential_sampling_quota() {
    run_cases(CASES, |rng| {
        let n = rng.gen_range(0..40usize);
        let count = rng.gen_range(1..30usize);
        let db = MemoryDb::from_sequences(
            (0..count).map(|i| vec![Symbol((i % M) as u16), Symbol(((i / M) % M) as u16)]),
        );
        let sample = sequential_sample(&db, n, rng);
        assert_eq!(sample.len(), n.min(count));
    });
}

/// The determinism contract of the parallel scan: phase 1 — symbol matches
/// *and* the seeded sample — is bit-identical at every thread count, on
/// random databases large enough to span several scan blocks.
#[test]
fn parallel_phase1_is_bit_identical_to_serial() {
    run_cases(12, |rng| {
        let matrix = random_matrix(rng, M, 0.01);
        // 200..700 sequences straddles the 256-sequence block size, so both
        // single-block and multi-block (tail-block) groupings are exercised.
        let db = MemorySequences(random_sequences(rng, M, 12, 200, 700));
        let sample_size = rng.gen_range(0..50usize);
        let seed = rng.gen::<u64>();
        let mut rng1 = StdRng::seed_from_u64(seed);
        let serial = phase1_threads(&db, &matrix, sample_size, &mut rng1, 1);
        for threads in [2usize, 3, 8] {
            let mut rngt = StdRng::seed_from_u64(seed);
            let parallel = phase1_threads(&db, &matrix, sample_size, &mut rngt, threads);
            assert_eq!(
                serial.symbol_match, parallel.symbol_match,
                "symbol matches diverged at {threads} threads"
            );
            assert_eq!(
                serial.sample, parallel.sample,
                "sample diverged at {threads} threads"
            );
        }
    });
}

/// Incremental stream ingestion accumulates per-symbol sums with the same
/// block grouping as the batch scan, so its symbol matches equal batch
/// phase 1 *bit for bit* — even though f64 addition is non-associative.
#[test]
fn stream_ingest_sums_equal_batch_phase1_bitwise() {
    run_cases(12, |rng| {
        let matrix = random_matrix(rng, M, 0.01);
        let seqs = random_sequences(rng, M, 12, 200, 700);
        let config = MinerConfig {
            min_match: 0.2,
            sample_size: 30,
            space: PatternSpace::contiguous(6),
            seed: rng.gen(),
            ..MinerConfig::default()
        };
        let mut engine = StreamState::new(matrix.clone(), config.clone()).unwrap();
        engine.ingest_all(seqs.iter().map(Vec::as_slice));

        let db = MemorySequences(seqs);
        let mut p1_rng = StdRng::seed_from_u64(config.seed);
        let batch = phase1_threads(&db, &matrix, config.sample_size, &mut p1_rng, 1);
        assert_eq!(engine.symbol_match(), batch.symbol_match);
    });
}

/// The full miner — patterns, match estimates, and stats that derive from
/// phase-1 output — is bit-identical at every thread count.
#[test]
fn mine_output_is_bit_identical_across_thread_counts() {
    run_cases(6, |rng| {
        let matrix = random_matrix(rng, M, 0.05);
        let db = MemorySequences(random_sequences(rng, M, 10, 150, 400));
        let mut config = MinerConfig {
            min_match: 0.25,
            delta: 0.05,
            sample_size: 40,
            counters_per_scan: 64,
            space: PatternSpace::contiguous(5),
            seed: rng.gen(),
            threads: 1,
            ..MinerConfig::default()
        };
        let serial = mine(&db, &matrix, &config).unwrap();
        for threads in [2usize, 8] {
            config.threads = threads;
            let parallel = mine(&db, &matrix, &config).unwrap();
            let s: Vec<_> = serial
                .frequent
                .iter()
                .map(|f| (f.pattern.clone(), f.match_estimate.to_bits()))
                .collect();
            let p: Vec<_> = parallel
                .frequent
                .iter()
                .map(|f| (f.pattern.clone(), f.match_estimate.to_bits()))
                .collect();
            assert_eq!(s, p, "mining output diverged at {threads} threads");
            assert_eq!(serial.border.elements(), parallel.border.elements());
        }
    });
}

/// Sub-/super-pattern relation is transitive through `extend`.
#[test]
fn extension_preserves_subpattern_relation() {
    run_cases(CASES, |rng| {
        let pattern = random_pattern(rng, M);
        let gap = rng.gen_range(0..3usize);
        let sym = Symbol(rng.gen_range(0..M as u16));
        let ext = pattern.extend(gap, sym);
        assert!(pattern.is_subpattern_of(&ext));
        assert!(!ext.is_subpattern_of(&pattern) || ext == pattern);
        assert_eq!(ext.non_eternal_count(), pattern.non_eternal_count() + 1);
    });
}
