//! Property-based tests of the model's core invariants (proptest).
//!
//! These exercise the claims of Section 3 on *random* patterns, sequences,
//! and compatibility matrices — not just the worked examples:
//!
//! - Claim 3.1/3.2 (Apriori): subpatterns match at least as strongly;
//! - identity matrix ⇒ match ≡ support (observation 3);
//! - total noise (all entries `1/m`) ⇒ all k-patterns have equal match;
//! - the restricted spread bounds every pattern's match (Claim 4.2);
//! - halfway patterns lie between their endpoints (Algorithm 4.4);
//! - sequential sampling returns exactly `min(n, N)` distinct sequences.

use noisemine::core::chernoff::restricted_spread;
use noisemine::core::matching::{
    db_match, db_support, sequence_match, symbol_db_match, MemorySequences,
};
use noisemine::core::{CompatibilityMatrix, Pattern, PatternElem, Symbol};
use noisemine::seqdb::{sequential_sample, MemoryDb};
use proptest::prelude::*;

const M: usize = 6;

/// A random column-stochastic compatibility matrix over `M` symbols.
fn matrix_strategy() -> impl Strategy<Value = CompatibilityMatrix> {
    proptest::collection::vec(
        proptest::collection::vec(0.01f64..1.0, M),
        M,
    )
    .prop_map(|cols| {
        // cols[j][i] is an unnormalized weight for C(i, j).
        let mut rows = vec![vec![0.0; M]; M];
        for (j, col) in cols.iter().enumerate() {
            let total: f64 = col.iter().sum();
            for (i, w) in col.iter().enumerate() {
                rows[i][j] = w / total;
            }
        }
        CompatibilityMatrix::from_rows(rows).expect("normalized columns")
    })
}

fn sequence_strategy(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0..M as u16, 1..max_len).prop_map(|v| {
        v.into_iter().map(Symbol).collect()
    })
}

/// A random valid pattern (first/last concrete) of up to 5 positions.
fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    proptest::collection::vec((0..M as u16, proptest::bool::ANY), 1..5).prop_map(|spec| {
        let mut elems: Vec<PatternElem> = spec
            .iter()
            .map(|&(s, any)| {
                if any {
                    PatternElem::Any
                } else {
                    PatternElem::Sym(Symbol(s))
                }
            })
            .collect();
        // Force the endpoints to be concrete.
        let first = spec.first().unwrap().0;
        let last = spec.last().unwrap().0;
        let n = elems.len();
        elems[0] = PatternElem::Sym(Symbol(first));
        elems[n - 1] = PatternElem::Sym(Symbol(last));
        Pattern::new(elems).expect("endpoints are concrete")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Claim 3.1: the match of a pattern never exceeds the match of any of
    /// its (immediate) subpatterns, in any sequence.
    #[test]
    fn apriori_on_sequences(
        pattern in pattern_strategy(),
        seq in sequence_strategy(20),
        matrix in matrix_strategy(),
    ) {
        let sup_match = sequence_match(&pattern, &seq, &matrix);
        for sub in pattern.immediate_subpatterns() {
            let sub_match = sequence_match(&sub, &seq, &matrix);
            prop_assert!(
                sub_match >= sup_match - 1e-12,
                "subpattern {sub} matches {sub_match} < superpattern {pattern} {sup_match}"
            );
        }
    }

    /// Claim 3.2: Apriori carries over to whole databases.
    #[test]
    fn apriori_on_databases(
        pattern in pattern_strategy(),
        seqs in proptest::collection::vec(sequence_strategy(15), 1..12),
        matrix in matrix_strategy(),
    ) {
        let db = MemorySequences(seqs);
        let sup = db_match(&pattern, &db, &matrix);
        for sub in pattern.immediate_subpatterns() {
            prop_assert!(db_match(&sub, &db, &matrix) >= sup - 1e-12);
        }
    }

    /// Identity matrix: match degenerates to support exactly.
    #[test]
    fn identity_matrix_means_support(
        pattern in pattern_strategy(),
        seqs in proptest::collection::vec(sequence_strategy(15), 1..12),
    ) {
        let id = CompatibilityMatrix::identity(M);
        let db = MemorySequences(seqs);
        let m = db_match(&pattern, &db, &id);
        let s = db_support(&pattern, &db);
        prop_assert!((m - s).abs() < 1e-12, "match {m} != support {s}");
    }

    /// Total noise: every pattern with the same number of concrete symbols
    /// has exactly the same match in every sufficiently long sequence.
    #[test]
    fn total_noise_flattens_all_patterns(
        seqs in proptest::collection::vec(sequence_strategy(15), 1..8),
        a in 0..M as u16,
        b in 0..M as u16,
        c in 0..M as u16,
        d in 0..M as u16,
    ) {
        let flat = CompatibilityMatrix::total_noise(M);
        let db = MemorySequences(seqs);
        let p1 = Pattern::contiguous(&[Symbol(a), Symbol(b)]).unwrap();
        let p2 = Pattern::contiguous(&[Symbol(c), Symbol(d)]).unwrap();
        prop_assert!((db_match(&p1, &db, &flat) - db_match(&p2, &db, &flat)).abs() < 1e-12);
    }

    /// Claim 4.2: a pattern's database match never exceeds its restricted
    /// spread (the minimum of its symbols' matches).
    #[test]
    fn restricted_spread_bounds_match(
        pattern in pattern_strategy(),
        seqs in proptest::collection::vec(sequence_strategy(15), 1..12),
        matrix in matrix_strategy(),
    ) {
        let db = MemorySequences(seqs);
        let symbol_match = symbol_db_match(&db, &matrix);
        let spread = restricted_spread(&pattern, &symbol_match);
        let value = db_match(&pattern, &db, &matrix);
        prop_assert!(
            value <= spread + 1e-12,
            "match {value} exceeds restricted spread {spread} for {pattern}"
        );
    }

    /// Match is always a probability-like value in [0, 1].
    #[test]
    fn match_is_bounded(
        pattern in pattern_strategy(),
        seq in sequence_strategy(20),
        matrix in matrix_strategy(),
    ) {
        let v = sequence_match(&pattern, &seq, &matrix);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// Algorithm 4.4: every halfway pattern between `P` and a superpattern
    /// extension of `P` is a superpattern of `P` and a subpattern of the
    /// extension, with the right number of concrete symbols.
    #[test]
    fn halfway_patterns_are_between(
        pattern in pattern_strategy(),
        exts in proptest::collection::vec((0usize..2, 0..M as u16), 1..4),
    ) {
        let mut sup = pattern.clone();
        for (gap, sym) in exts {
            sup = sup.extend(gap, Symbol(sym));
        }
        let k1 = pattern.non_eternal_count();
        let k2 = sup.non_eternal_count();
        let mid = (k1 + k2).div_ceil(2);
        for candidate in pattern.between(&sup, mid) {
            prop_assert_eq!(candidate.non_eternal_count(), mid);
            prop_assert!(pattern.is_subpattern_of(&candidate));
            prop_assert!(candidate.is_subpattern_of(&sup));
        }
    }

    /// Sequential sampling returns exactly `min(n, N)` sequences, in scan
    /// order, without duplication of positions.
    #[test]
    fn sequential_sampling_quota(
        n in 0usize..40,
        count in 1usize..30,
        seed in 0u64..1000,
    ) {
        let db = MemoryDb::from_sequences(
            (0..count).map(|i| vec![Symbol((i % M) as u16), Symbol(((i / M) % M) as u16)]),
        );
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let sample = sequential_sample(&db, n, &mut rng);
        prop_assert_eq!(sample.len(), n.min(count));
    }

    /// Sub-/super-pattern relation is transitive through `extend`.
    #[test]
    fn extension_preserves_subpattern_relation(
        pattern in pattern_strategy(),
        gap in 0usize..3,
        sym in 0..M as u16,
    ) {
        let ext = pattern.extend(gap, Symbol(sym));
        prop_assert!(pattern.is_subpattern_of(&ext));
        prop_assert!(!ext.is_subpattern_of(&pattern) || ext == pattern);
        prop_assert_eq!(ext.non_eternal_count(), pattern.non_eternal_count() + 1);
    }
}
