//! Property tests for the serialization layers: every writer/reader pair
//! must round-trip arbitrary valid data exactly.

use noisemine::core::{matrix_io, Alphabet, CompatibilityMatrix, Pattern, Symbol};
use noisemine::seqdb::{read_sequences, write_sequences, DiskDb};
use noisemine::core::matching::SequenceScan;
use proptest::prelude::*;

/// Arbitrary token-style alphabet (multi-character names, no whitespace).
fn alphabet_strategy() -> impl Strategy<Value = Alphabet> {
    proptest::collection::btree_set("[a-z]{2,6}", 2..10)
        .prop_map(|names| Alphabet::new(names).expect("btree set names are distinct"))
}

fn matrix_strategy(m: usize) -> impl Strategy<Value = CompatibilityMatrix> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, m), m).prop_map(
        move |cols| {
            let mut rows = vec![vec![0.0; m]; m];
            for (j, col) in cols.iter().enumerate() {
                let total: f64 = col.iter().sum();
                for (i, w) in col.iter().enumerate() {
                    rows[i][j] = w / total;
                }
            }
            CompatibilityMatrix::from_rows(rows).expect("normalized")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Text sequences round-trip for any alphabet and content.
    #[test]
    fn text_sequences_round_trip(
        alphabet in alphabet_strategy(),
        shape in proptest::collection::vec(1usize..20, 0..10),
        seed in 0u64..1000,
    ) {
        let m = alphabet.len() as u64;
        let sequences: Vec<Vec<Symbol>> = shape
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len)
                    .map(|j| Symbol((((seed + i as u64) * 31 + j as u64 * 7) % m) as u16))
                    .collect()
            })
            .collect();
        let mut buf = Vec::new();
        write_sequences(&mut buf, &sequences, &alphabet).unwrap();
        let back = read_sequences(buf.as_slice(), &alphabet).unwrap();
        prop_assert_eq!(back, sequences);
    }

    /// Dense and sparse matrix text formats round-trip bit-for-bit... up to
    /// the decimal re-parse (we write with `{}` which is shortest-exact for
    /// f64, so values are preserved exactly).
    #[test]
    fn matrix_text_round_trip(
        m in 2usize..8,
        dense in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let matrix = {
            // Deterministic stand-in for a strategy-of-strategy: reuse the
            // sparse_random generator from datagen.
            noisemine::datagen::sparse_random_matrix(m, 0.5, 0.6, seed)
        };
        let alphabet = Alphabet::synthetic(m);
        let text = if dense {
            matrix_io::to_dense_string(&alphabet, &matrix).unwrap()
        } else {
            matrix_io::to_sparse_string(&alphabet, &matrix).unwrap()
        };
        let (a2, m2) = matrix_io::read_matrix(text.as_bytes()).unwrap();
        prop_assert_eq!(a2.len(), m);
        for i in 0..m as u16 {
            for j in 0..m as u16 {
                prop_assert_eq!(
                    m2.get(Symbol(i), Symbol(j)),
                    matrix.get(Symbol(i), Symbol(j)),
                    "entry ({}, {})", i, j
                );
            }
        }
    }

    /// Random column-stochastic matrices round-trip through the dense text
    /// format.
    #[test]
    fn dense_matrix_round_trip_random(matrix in matrix_strategy(5)) {
        let alphabet = Alphabet::synthetic(5);
        let text = matrix_io::to_dense_string(&alphabet, &matrix).unwrap();
        let (_, m2) = matrix_io::read_matrix(text.as_bytes()).unwrap();
        for i in 0..5u16 {
            for j in 0..5u16 {
                prop_assert_eq!(m2.get(Symbol(i), Symbol(j)), matrix.get(Symbol(i), Symbol(j)));
            }
        }
    }

    /// The binary disk format round-trips arbitrary sequences (including
    /// empty ones and max-id symbols).
    #[test]
    fn disk_round_trip(
        shape in proptest::collection::vec(0usize..30, 0..12),
        seed in 0u64..1000,
    ) {
        let sequences: Vec<Vec<Symbol>> = shape
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len)
                    .map(|j| Symbol((((seed + i as u64) * 131 + j as u64) % 65536) as u16))
                    .collect()
            })
            .collect();
        let path = std::env::temp_dir().join(format!(
            "noisemine-prop-disk-{}-{seed}-{}.db",
            std::process::id(),
            shape.len(),
        ));
        let db = DiskDb::create_from(&path, sequences.iter().map(Vec::as_slice)).unwrap();
        prop_assert_eq!(db.num_sequences(), sequences.len());
        let mut back = Vec::new();
        db.scan(&mut |_, s| back.push(s.to_vec()));
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, sequences);
    }

    /// Pattern parse/display round-trips for arbitrary valid patterns over
    /// a single-character alphabet.
    #[test]
    fn pattern_parse_display_round_trip(
        spec in proptest::collection::vec((0u16..20, 0usize..3), 1..8),
    ) {
        let alphabet = Alphabet::amino_acids();
        // Build: symbol, then (gap, symbol) pairs.
        let mut pattern = Pattern::single(Symbol(spec[0].0));
        for &(sym, gap) in &spec[1..] {
            pattern = pattern.extend(gap, Symbol(sym));
        }
        let text = pattern.display(&alphabet).unwrap();
        let back = Pattern::parse(&text, &alphabet).unwrap();
        prop_assert_eq!(back, pattern);
    }
}
