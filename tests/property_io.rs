//! Property tests for the serialization layers: every writer/reader pair
//! must round-trip arbitrary valid data exactly.

mod common;

use common::{random_matrix, run_cases};
use noisemine::core::matching::SequenceScan;
use noisemine::core::{matrix_io, Alphabet, Pattern, Symbol};
use noisemine::seqdb::{read_sequences, write_sequences, DiskDb};
use rand::rngs::StdRng;
use rand::Rng;

const CASES: usize = 64;

/// Arbitrary token-style alphabet (multi-character names, no whitespace).
fn random_alphabet(rng: &mut StdRng) -> Alphabet {
    let count = rng.gen_range(2..10usize);
    let mut names = std::collections::BTreeSet::new();
    while names.len() < count {
        let len = rng.gen_range(2..7usize);
        let name: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        names.insert(name);
    }
    Alphabet::new(names).expect("btree set names are distinct")
}

/// Text sequences round-trip for any alphabet and content.
#[test]
fn text_sequences_round_trip() {
    run_cases(CASES, |rng| {
        let alphabet = random_alphabet(rng);
        let m = alphabet.len() as u64;
        let seed: u64 = rng.gen_range(0..1000u64);
        let shape: Vec<usize> = (0..rng.gen_range(0..10usize))
            .map(|_| rng.gen_range(1..20usize))
            .collect();
        let sequences: Vec<Vec<Symbol>> = shape
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len)
                    .map(|j| Symbol((((seed + i as u64) * 31 + j as u64 * 7) % m) as u16))
                    .collect()
            })
            .collect();
        let mut buf = Vec::new();
        write_sequences(&mut buf, &sequences, &alphabet).unwrap();
        let back = read_sequences(buf.as_slice(), &alphabet).unwrap();
        assert_eq!(back, sequences);
    });
}

/// Dense and sparse matrix text formats round-trip bit-for-bit... up to
/// the decimal re-parse (we write with `{}` which is shortest-exact for
/// f64, so values are preserved exactly).
#[test]
fn matrix_text_round_trip() {
    run_cases(CASES, |rng| {
        let m = rng.gen_range(2..8usize);
        let dense = rng.gen_bool(0.5);
        let seed: u64 = rng.gen_range(0..1000u64);
        let matrix = noisemine::datagen::sparse_random_matrix(m, 0.5, 0.6, seed);
        let alphabet = Alphabet::synthetic(m);
        let text = if dense {
            matrix_io::to_dense_string(&alphabet, &matrix).unwrap()
        } else {
            matrix_io::to_sparse_string(&alphabet, &matrix).unwrap()
        };
        let (a2, m2) = matrix_io::read_matrix(text.as_bytes()).unwrap();
        assert_eq!(a2.len(), m);
        for i in 0..m as u16 {
            for j in 0..m as u16 {
                assert_eq!(
                    m2.get(Symbol(i), Symbol(j)),
                    matrix.get(Symbol(i), Symbol(j)),
                    "entry ({i}, {j})"
                );
            }
        }
    });
}

/// Random column-stochastic matrices round-trip through the dense text
/// format.
#[test]
fn dense_matrix_round_trip_random() {
    run_cases(CASES, |rng| {
        let matrix = random_matrix(rng, 5, 0.01);
        let alphabet = Alphabet::synthetic(5);
        let text = matrix_io::to_dense_string(&alphabet, &matrix).unwrap();
        let (_, m2) = matrix_io::read_matrix(text.as_bytes()).unwrap();
        for i in 0..5u16 {
            for j in 0..5u16 {
                assert_eq!(
                    m2.get(Symbol(i), Symbol(j)),
                    matrix.get(Symbol(i), Symbol(j))
                );
            }
        }
    });
}

/// The binary disk format round-trips arbitrary sequences (including
/// empty ones and max-id symbols).
#[test]
fn disk_round_trip() {
    let mut case = 0u64;
    run_cases(CASES, |rng| {
        case += 1;
        let seed: u64 = rng.gen_range(0..1000u64);
        let shape: Vec<usize> = (0..rng.gen_range(0..12usize))
            .map(|_| rng.gen_range(0..30usize))
            .collect();
        let sequences: Vec<Vec<Symbol>> = shape
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len)
                    .map(|j| Symbol((((seed + i as u64) * 131 + j as u64) % 65536) as u16))
                    .collect()
            })
            .collect();
        let path = std::env::temp_dir().join(format!(
            "noisemine-prop-disk-{}-{case}.db",
            std::process::id(),
        ));
        let db = DiskDb::create_from(&path, sequences.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(db.num_sequences(), sequences.len());
        let mut back = Vec::new();
        db.scan(&mut |_, s| back.push(s.to_vec()));
        std::fs::remove_file(&path).ok();
        assert_eq!(back, sequences);
    });
}

/// Pattern parse/display round-trips for arbitrary valid patterns over
/// a single-character alphabet.
#[test]
fn pattern_parse_display_round_trip() {
    run_cases(CASES, |rng| {
        let alphabet = Alphabet::amino_acids();
        let count = rng.gen_range(1..8usize);
        let mut pattern = Pattern::single(Symbol(rng.gen_range(0..20u16)));
        for _ in 1..count {
            let sym = Symbol(rng.gen_range(0..20u16));
            let gap = rng.gen_range(0..3usize);
            pattern = pattern.extend(gap, sym);
        }
        let text = pattern.display(&alphabet).unwrap();
        let back = Pattern::parse(&text, &alphabet).unwrap();
        assert_eq!(back, pattern);
    });
}
