//! Property tests for the batched candidate-trie match kernel (seeded
//! harness, see `common`).
//!
//! The kernel's whole contract is *bit-identity*: for every pattern in a
//! batch, [`CandidateTrie::batch_sequence_match`] must return exactly the
//! `f64` that the naive per-pattern [`sequence_match`] oracle returns —
//! same windows, same left-to-right products, and a subtree-pruning floor
//! that is provably lossless (Claim 3.1 monotonicity: products only shrink
//! as a window extends). These suites drive that contract on random
//! matrices, random batches (short wildcard patterns, long gapped
//! Apriori-style frontiers), and random databases, plus the edge cases
//! where the trie's shape degenerates: an empty batch, patterns longer
//! than the sequence, and shared-prefix wildcard columns. The database
//! scans are additionally checked across thread counts and both kernels —
//! four ways to compute the same `Vec<f64>`, one acceptable answer.

mod common;

use common::{random_matrix, random_pattern, random_sequence, random_sequences, run_cases};
use noisemine::core::matching::{db_match_many_kernel, sequence_match};
use noisemine::core::{
    CandidateTrie, CompatibilityMatrix, MatchKernel, Pattern, PatternElem, PatternSpace, Symbol,
};
use noisemine::seqdb::MemoryDb;
use rand::rngs::StdRng;
use rand::Rng;

const M: usize = 6;
const CASES: usize = 96;

/// A random batch mixing short wildcard patterns with longer ones (up to
/// `max_len` positions, concrete endpoints, wildcard runs inside).
fn random_batch(rng: &mut StdRng, m: usize, count: usize, max_len: usize) -> Vec<Pattern> {
    (0..count)
        .map(|_| {
            if rng.gen_bool(0.5) {
                random_pattern(rng, m)
            } else {
                random_long_pattern(rng, m, max_len)
            }
        })
        .collect()
}

/// A random pattern of `2..=max_len` positions: concrete endpoints with a
/// 35% wildcard rate in between — long enough to exercise deep trie paths
/// and the floor-based subtree pruning.
fn random_long_pattern(rng: &mut StdRng, m: usize, max_len: usize) -> Pattern {
    let len = rng.gen_range(2..=max_len);
    let mut elems: Vec<PatternElem> = (0..len)
        .map(|_| {
            if rng.gen_bool(0.35) {
                PatternElem::Any
            } else {
                PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)))
            }
        })
        .collect();
    elems[0] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
    let n = elems.len();
    elems[n - 1] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
    Pattern::new(elems).expect("endpoints are concrete")
}

/// A random matrix: mostly noisy column-stochastic, sometimes the identity
/// (exact hits saturate the kernel's early-exit path), sometimes nearly
/// sparse (entries close to zero stress the pruning floor).
fn random_kernel_matrix(rng: &mut StdRng, m: usize) -> CompatibilityMatrix {
    match rng.gen_range(0..4u8) {
        0 => CompatibilityMatrix::identity(m),
        1 => random_matrix(rng, m, 1e-6),
        _ => random_matrix(rng, m, 0.01),
    }
}

/// Bit-for-bit equality of two match vectors, with a readable diagnostic.
fn assert_bit_identical(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: pattern {i} diverged: kernel {g:e} vs oracle {w:e}"
        );
    }
}

/// The core contract: one trie walk over a sequence returns exactly what
/// the per-pattern oracle returns, for every pattern in a random batch.
#[test]
fn batch_matches_the_per_pattern_oracle() {
    run_cases(CASES, |rng| {
        let count = rng.gen_range(1..20usize);
        let patterns = random_batch(rng, M, count, 10);
        let seq = random_sequence(rng, M, 25);
        let matrix = random_kernel_matrix(rng, M);
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.scratch();
        let mut got = vec![0.0f64; patterns.len()];
        trie.batch_sequence_match(&seq, &matrix, &mut scratch, &mut got);
        let want: Vec<f64> = patterns
            .iter()
            .map(|p| sequence_match(p, &seq, &matrix))
            .collect();
        assert_bit_identical(&got, &want, "batch vs oracle");
    });
}

/// Gapped-space frontiers — the batches phase 3 actually probes: a random
/// Apriori level grown with `Pattern::extend` under a gapped
/// [`PatternSpace`], heavy prefix sharing and wildcard columns included.
#[test]
fn gapped_frontier_matches_the_oracle() {
    run_cases(CASES, |rng| {
        let max_gap = rng.gen_range(0..3usize);
        let space = PatternSpace::new(max_gap, 12).expect("valid space");
        let mut frontier: Vec<Pattern> =
            (0..M as u16).map(|s| Pattern::single(Symbol(s))).collect();
        for _ in 0..rng.gen_range(1..4usize) {
            frontier = frontier
                .iter()
                .flat_map(|base| {
                    let gap = rng.gen_range(0..=max_gap);
                    (0..M as u16).map(move |s| base.extend(gap, Symbol(s)))
                })
                .filter(|p| space.admits(p))
                .collect();
        }
        let seq = random_sequence(rng, M, 25);
        let matrix = random_kernel_matrix(rng, M);
        let trie = CandidateTrie::new(&frontier);
        let mut scratch = trie.scratch();
        let mut got = vec![0.0f64; frontier.len()];
        trie.batch_sequence_match(&seq, &matrix, &mut scratch, &mut got);
        let want: Vec<f64> = frontier
            .iter()
            .map(|p| sequence_match(p, &seq, &matrix))
            .collect();
        assert_bit_identical(&got, &want, "gapped frontier vs oracle");
    });
}

/// An empty batch is a no-op under both kernels and never touches the
/// output slice.
#[test]
fn empty_trie_is_a_no_op() {
    run_cases(12, |rng| {
        let seq = random_sequence(rng, M, 25);
        let matrix = random_kernel_matrix(rng, M);
        let trie = CandidateTrie::new(&[]);
        let mut scratch = trie.scratch();
        trie.batch_sequence_match(&seq, &matrix, &mut scratch, &mut []);
        let db = MemoryDb::from_sequences(vec![seq]);
        for kernel in [MatchKernel::Naive, MatchKernel::Trie] {
            assert!(db_match_many_kernel(&[], &db, &matrix, 1, kernel).is_empty());
        }
    });
}

/// Patterns longer than the sequence have no window at all: the kernel
/// must report exactly 0, like the oracle, not skip the output slot.
#[test]
fn pattern_longer_than_sequence_is_zero() {
    run_cases(24, |rng| {
        let seq = random_sequence(rng, M, 6);
        let count = rng.gen_range(1..8usize);
        let patterns = random_batch(rng, M, count, 12);
        let matrix = random_kernel_matrix(rng, M);
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.scratch();
        let mut got = vec![f64::NAN; patterns.len()];
        trie.batch_sequence_match(&seq, &matrix, &mut scratch, &mut got);
        for (p, &g) in patterns.iter().zip(&got) {
            let want = sequence_match(p, &seq, &matrix);
            assert!(g.to_bits() == want.to_bits(), "{p}: {g:e} vs {want:e}");
            if p.len() > seq.len() {
                assert_eq!(g, 0.0, "{p} is longer than the sequence");
            }
        }
    });
}

/// Database scans: both kernels, at one worker and at four, produce the
/// same bits — the thread count and the kernel are both purely
/// operational knobs.
#[test]
fn db_scans_are_bit_identical_across_kernels_and_threads() {
    run_cases(48, |rng| {
        let db = MemoryDb::from_sequences(random_sequences(rng, M, 25, 1, 12));
        let count = rng.gen_range(1..16usize);
        let patterns = random_batch(rng, M, count, 10);
        let matrix = random_kernel_matrix(rng, M);
        let reference = db_match_many_kernel(&patterns, &db, &matrix, 1, MatchKernel::Naive);
        for kernel in [MatchKernel::Naive, MatchKernel::Trie] {
            for threads in [1, 4] {
                let got = db_match_many_kernel(&patterns, &db, &matrix, threads, kernel);
                assert_bit_identical(
                    &got,
                    &reference,
                    &format!("{} @ {threads} thread(s)", kernel.name()),
                );
            }
        }
    });
}
