//! Property tests on the *algorithms*: on random small instances the
//! probabilistic miner (with a full-coverage sample), Max-Miner, and the
//! Toivonen baseline must all reproduce the exact level-wise result, and
//! border collapsing must agree with level-wise verification for any
//! counter budget.

mod common;

use std::collections::HashSet;

use common::{random_matrix, run_cases};
use noisemine::baselines::{
    mine_depth_first, mine_hierarchical, mine_levelwise, mine_maxminer, MaxMinerConfig,
};
use noisemine::core::border_collapse::{collapse, ProbeStrategy};
use noisemine::core::lattice::AmbiguousSpace;
use noisemine::core::matching::{db_match, MatchMetric};
use noisemine::core::miner::{mine, MinerConfig};
use noisemine::core::{Pattern, PatternSpace, Symbol};
use noisemine::seqdb::MemoryDb;
use rand::rngs::StdRng;
use rand::Rng;

const M: usize = 5;
const CASES: usize = 48;

fn random_db(rng: &mut StdRng) -> MemoryDb {
    let count = rng.gen_range(3..12usize);
    MemoryDb::from_sequences((0..count).map(|_| {
        let len = rng.gen_range(2..10usize);
        (0..len)
            .map(|_| Symbol(rng.gen_range(0..M as u16)))
            .collect::<Vec<_>>()
    }))
}

/// With the sample covering the whole database, the three-phase miner's
/// output equals the exact level-wise result for any threshold and
/// either probe strategy.
#[test]
fn three_phase_with_full_sample_is_exact() {
    run_cases(CASES, |rng| {
        let db = random_db(rng);
        let matrix = random_matrix(rng, M, 0.05);
        let min_match = rng.gen_range(0.05..0.6f64);
        let counters = rng.gen_range(1..20usize);
        let levelwise_probe = rng.gen_bool(0.5);
        let space = PatternSpace::contiguous(4);
        let cfg = MinerConfig {
            min_match,
            delta: 0.05,
            sample_size: db.num_sequences_hint(),
            counters_per_scan: counters,
            space,
            probe_strategy: if levelwise_probe {
                ProbeStrategy::LevelWise
            } else {
                ProbeStrategy::BorderCollapsing
            },
            seed: 1,
            ..MinerConfig::default()
        };
        let outcome = mine(&db, &matrix, &cfg).unwrap();
        let exact = mine_levelwise(
            &db,
            &MatchMetric { matrix: &matrix },
            M,
            min_match,
            &cfg.space,
            usize::MAX,
        );
        let got: HashSet<Pattern> = outcome.patterns().into_iter().collect();
        assert_eq!(got, exact.pattern_set());
    });
}

/// Max-Miner finds exactly the level-wise frequent set regardless of
/// look-ahead configuration.
#[test]
fn maxminer_is_exact() {
    run_cases(CASES, |rng| {
        let db = random_db(rng);
        let matrix = random_matrix(rng, M, 0.05);
        let min_match = rng.gen_range(0.05..0.6f64);
        let lookaheads = rng.gen_range(0..16usize);
        let space = PatternSpace::contiguous(4);
        let mm = mine_maxminer(
            &db,
            &MatchMetric { matrix: &matrix },
            M,
            min_match,
            &space,
            &MaxMinerConfig {
                lookaheads_per_scan: lookaheads,
                counters_per_scan: 50,
            },
        );
        let exact = mine_levelwise(
            &db,
            &MatchMetric { matrix: &matrix },
            M,
            min_match,
            &space,
            usize::MAX,
        );
        assert_eq!(mm.pattern_set(), exact.pattern_set());
    });
}

/// Depth-first and hierarchical mining both reproduce the exact
/// level-wise frequent set on random instances.
#[test]
fn depthfirst_and_hierarchical_are_exact() {
    run_cases(CASES, |rng| {
        let db = random_db(rng);
        let matrix = random_matrix(rng, M, 0.05);
        let min_match = rng.gen_range(0.05..0.6f64);
        let min_compat = rng.gen_range(0.05..0.5f64);
        let space = PatternSpace::contiguous(4);
        let sequences: Vec<Vec<Symbol>> = {
            use noisemine::core::matching::SequenceScan;
            let mut v = Vec::new();
            db.scan(&mut |_, s| v.push(s.to_vec()));
            v
        };
        let exact = mine_levelwise(
            &db,
            &MatchMetric { matrix: &matrix },
            M,
            min_match,
            &space,
            usize::MAX,
        );
        let dfs = mine_depth_first(&sequences, &matrix, min_match, &space);
        assert_eq!(dfs.pattern_set(), exact.pattern_set());
        let hier = mine_hierarchical(&sequences, &matrix, min_match, &space, min_compat);
        assert_eq!(hier.pattern_set(), exact.pattern_set());
    });
}

/// Border collapsing resolves every ambiguous pattern to the same
/// verdict as direct counting, for any probe budget and strategy.
#[test]
fn collapse_is_exact_for_any_budget() {
    run_cases(CASES, |rng| {
        let db = random_db(rng);
        let matrix = random_matrix(rng, M, 0.05);
        let min_match = rng.gen_range(0.05..0.6f64);
        let budget = rng.gen_range(1..12usize);
        let levelwise_probe = rng.gen_bool(0.5);
        // Ambiguous set: all 1- and 2-patterns.
        let mut patterns = Vec::new();
        for a in 0..M as u16 {
            patterns.push(Pattern::single(Symbol(a)));
            for b in 0..M as u16 {
                patterns.push(Pattern::contiguous(&[Symbol(a), Symbol(b)]).unwrap());
            }
        }
        let strategy = if levelwise_probe {
            ProbeStrategy::LevelWise
        } else {
            ProbeStrategy::BorderCollapsing
        };
        let result = collapse(
            AmbiguousSpace::new(patterns.clone()),
            &db,
            &matrix,
            min_match,
            budget,
            strategy,
        );
        for p in &patterns {
            let exact = db_match(p, &db, &matrix);
            let frequent = result.frequent.iter().any(|r| &r.pattern == p);
            let infrequent = result.infrequent.iter().any(|r| &r.pattern == p);
            assert!(
                frequent ^ infrequent,
                "{} resolved {}",
                p,
                if frequent { "twice" } else { "never" }
            );
            assert_eq!(frequent, exact >= min_match);
        }
    });
}

/// Helper: MemoryDb does not expose num_sequences directly without the
/// trait; small extension for the test.
trait NumSequences {
    fn num_sequences_hint(&self) -> usize;
}

impl NumSequences for MemoryDb {
    fn num_sequences_hint(&self) -> usize {
        use noisemine::core::matching::SequenceScan;
        self.num_sequences()
    }
}
