//! Property tests for the columnar SIMD match kernel (seeded harness, see
//! `common`).
//!
//! The columnar kernel ships with a *documented* tolerance against the
//! trie oracle: [`SIMD_MAX_ULP`] units in the last place. The constant is
//! currently **zero** — the kernel preserves the per-window multiplication
//! order and the max over windows is order-independent for the
//! non-negative finite values the match metric produces — so these suites
//! measure the actual ULP distance on random matrices, random mixed
//! batches, and gapped Apriori-style frontiers and assert it never exceeds
//! the contract. Should a future layout widen `SIMD_MAX_ULP`, the suites
//! keep working and keep the new bound honest.
//!
//! Two paths are checked independently: whatever
//! `batch_sequence_match_columnar` dispatches to on this host (AVX2 where
//! available, otherwise the portable fallback — under
//! `NOISEMINE_FORCE_SCALAR=1` the CI fallback lane pins it), and the
//! scalar path forced explicitly, which must be *bit-identical* to the
//! oracle regardless of the contract's headroom. Database-level scans are
//! additionally held bit-identical across all three kernels and across
//! thread counts.

mod common;

use common::{random_matrix, random_pattern, random_sequence, random_sequences, run_cases};
use noisemine::core::matching::{db_match_many_kernel, sequence_match};
use noisemine::core::{
    simd_active, CandidateTrie, CompatibilityMatrix, MatchKernel, Pattern, PatternElem,
    PatternSpace, Symbol, SIMD_MAX_ULP,
};
use noisemine::seqdb::MemoryDb;
use rand::rngs::StdRng;
use rand::Rng;

const M: usize = 6;
const CASES: usize = 96;

/// ULP distance between two non-negative finite `f64`s (the only values
/// the match metric produces): the absolute difference of their ordered
/// bit representations. Identical bits ⇒ 0.
fn ulp_distance(a: f64, b: f64) -> u64 {
    assert!(
        a.is_finite() && b.is_finite() && a >= 0.0 && b >= 0.0,
        "match values must be non-negative finite, got {a:e} / {b:e}"
    );
    a.to_bits().abs_diff(b.to_bits())
}

/// Asserts every pairing in `got`/`want` is within the documented
/// [`SIMD_MAX_ULP`] tolerance.
fn assert_within_contract(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let ulp = ulp_distance(*g, *w);
        assert!(
            ulp <= u64::from(SIMD_MAX_ULP),
            "{what}: pattern {i} off by {ulp} ULP (> {SIMD_MAX_ULP}): \
             columnar {g:e} vs oracle {w:e}"
        );
    }
}

/// A random batch mixing short wildcard patterns with longer gapped ones —
/// deep trie paths, shared prefixes, interior `*` columns.
fn random_batch(rng: &mut StdRng, m: usize, count: usize, max_len: usize) -> Vec<Pattern> {
    (0..count)
        .map(|_| {
            if rng.gen_bool(0.5) {
                random_pattern(rng, m)
            } else {
                random_long_pattern(rng, m, max_len)
            }
        })
        .collect()
}

/// A random pattern of `2..=max_len` positions: concrete endpoints with a
/// 35% interior wildcard rate.
fn random_long_pattern(rng: &mut StdRng, m: usize, max_len: usize) -> Pattern {
    let len = rng.gen_range(2..=max_len);
    let mut elems: Vec<PatternElem> = (0..len)
        .map(|_| {
            if rng.gen_bool(0.35) {
                PatternElem::Any
            } else {
                PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)))
            }
        })
        .collect();
    elems[0] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
    let n = elems.len();
    elems[n - 1] = PatternElem::Sym(Symbol(rng.gen_range(0..m as u16)));
    Pattern::new(elems).expect("endpoints are concrete")
}

/// A random matrix: identity (saturation early-exit), near-sparse
/// (pruning floors and dead stripe entries), or plainly noisy.
fn random_kernel_matrix(rng: &mut StdRng, m: usize) -> CompatibilityMatrix {
    match rng.gen_range(0..4u8) {
        0 => CompatibilityMatrix::identity(m),
        1 => random_matrix(rng, m, 1e-6),
        _ => random_matrix(rng, m, 0.01),
    }
}

/// The dispatched columnar path (AVX2 on capable hosts) stays within the
/// documented ULP tolerance of the per-pattern oracle on random batches.
#[test]
fn columnar_batch_is_within_ulp_contract_of_the_oracle() {
    run_cases(CASES, |rng| {
        let count = rng.gen_range(1..20usize);
        let patterns = random_batch(rng, M, count, 10);
        let seq = random_sequence(rng, M, 25);
        let matrix = random_kernel_matrix(rng, M);
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.simd_scratch();
        let mut got = vec![f64::NAN; patterns.len()];
        trie.batch_sequence_match_columnar(&seq, &matrix, &mut scratch, &mut got);
        let want: Vec<f64> = patterns
            .iter()
            .map(|p| sequence_match(p, &seq, &matrix))
            .collect();
        assert_within_contract(&got, &want, "columnar vs oracle");
    });
}

/// The portable scalar path is *bit-identical* to the oracle — stricter
/// than the ULP contract, because it is also the reference the AVX2 path
/// is held to and what Miri and non-x86 hosts execute.
#[test]
fn forced_scalar_path_is_bit_identical_to_the_oracle() {
    run_cases(CASES, |rng| {
        let count = rng.gen_range(1..20usize);
        let patterns = random_batch(rng, M, count, 10);
        let seq = random_sequence(rng, M, 25);
        let matrix = random_kernel_matrix(rng, M);
        let trie = CandidateTrie::new(&patterns);
        let mut scratch = trie.simd_scratch();
        let mut got = vec![f64::NAN; patterns.len()];
        trie.batch_sequence_match_columnar_scalar(&seq, &matrix, &mut scratch, &mut got);
        for (i, p) in patterns.iter().enumerate() {
            let want = sequence_match(p, &seq, &matrix);
            assert!(
                got[i].to_bits() == want.to_bits(),
                "{p}: scalar columnar {:e} != oracle {want:e}",
                got[i]
            );
        }
    });
}

/// Gapped-space frontiers — the batches the Apriori phases actually probe:
/// heavy prefix sharing, wildcard columns, duplicate patterns after
/// filtering. Both columnar paths on one reused scratch.
#[test]
fn gapped_frontier_is_within_ulp_contract() {
    run_cases(CASES, |rng| {
        let max_gap = rng.gen_range(0..3usize);
        let space = PatternSpace::new(max_gap, 12).expect("valid space");
        let mut frontier: Vec<Pattern> =
            (0..M as u16).map(|s| Pattern::single(Symbol(s))).collect();
        for _ in 0..rng.gen_range(1..4usize) {
            frontier = frontier
                .iter()
                .flat_map(|base| {
                    let gap = rng.gen_range(0..=max_gap);
                    (0..M as u16).map(move |s| base.extend(gap, Symbol(s)))
                })
                .filter(|p| space.admits(p))
                .collect();
        }
        let seq = random_sequence(rng, M, 25);
        let matrix = random_kernel_matrix(rng, M);
        let trie = CandidateTrie::new(&frontier);
        let mut scratch = trie.simd_scratch();
        let want: Vec<f64> = frontier
            .iter()
            .map(|p| sequence_match(p, &seq, &matrix))
            .collect();
        let mut got = vec![f64::NAN; frontier.len()];
        trie.batch_sequence_match_columnar(&seq, &matrix, &mut scratch, &mut got);
        assert_within_contract(&got, &want, "gapped frontier (dispatched)");
        // Scratch reuse across paths must not leak state between walks.
        let mut scalar = vec![f64::NAN; frontier.len()];
        trie.batch_sequence_match_columnar_scalar(&seq, &matrix, &mut scratch, &mut scalar);
        for (i, (g, w)) in scalar.iter().zip(&want).enumerate() {
            assert!(
                g.to_bits() == w.to_bits(),
                "gapped frontier (scalar): pattern {i}: {g:e} vs {w:e}"
            );
        }
    });
}

/// The accumulating entry point used by database scans: summing per-block
/// partials through `MatchKernel::Simd` at one worker and at four returns
/// the exact bits of the naive scan — the kernel choice and the thread
/// count are both purely operational.
#[test]
fn db_scans_with_simd_kernel_are_bit_identical_across_threads() {
    run_cases(48, |rng| {
        let db = MemoryDb::from_sequences(random_sequences(rng, M, 25, 1, 12));
        let count = rng.gen_range(1..16usize);
        let patterns = random_batch(rng, M, count, 10);
        let matrix = random_kernel_matrix(rng, M);
        let reference = db_match_many_kernel(&patterns, &db, &matrix, 1, MatchKernel::Naive);
        for kernel in [MatchKernel::Trie, MatchKernel::Simd] {
            for threads in [1, 4] {
                let got = db_match_many_kernel(&patterns, &db, &matrix, threads, kernel);
                assert_eq!(got.len(), reference.len());
                for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
                    assert!(
                        g.to_bits() == w.to_bits(),
                        "{} @ {threads} thread(s): pattern {i}: {g:e} vs {w:e}",
                        kernel.name()
                    );
                }
            }
        }
    });
}

/// Sanity on the dispatch witness: whichever way `simd_active()` resolved
/// for this process, the scratch's per-path sequence counters must agree
/// with it — the suite would otherwise silently test one path twice.
#[test]
fn dispatch_matches_the_advertised_path() {
    let patterns = vec![Pattern::single(Symbol(0))];
    let matrix = CompatibilityMatrix::identity(M);
    let trie = CandidateTrie::new(&patterns);
    let mut scratch = trie.simd_scratch();
    let mut out = vec![0.0f64; 1];
    trie.batch_sequence_match_columnar(&[Symbol(0)], &matrix, &mut scratch, &mut out);
    if simd_active() {
        assert_eq!(
            scratch.simd_sequences, 1,
            "AVX2 host must take the simd path"
        );
        assert_eq!(scratch.scalar_sequences, 0);
    } else {
        assert_eq!(
            scratch.scalar_sequences, 1,
            "fallback host must take scalar"
        );
        assert_eq!(scratch.simd_sequences, 0);
    }
}
