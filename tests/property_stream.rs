//! Property tests for the streaming layer: reservoir sampling statistics
//! and checkpoint→restore state equality on random workloads.

mod common;

use common::{random_matrix, random_sequences, run_cases};
use noisemine::core::miner::MinerConfig;
use noisemine::core::{PatternSpace, Symbol};
use noisemine::seqdb::{reservoir_sample, MemoryDb};
use noisemine::stream::StreamState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const M: usize = 5;

/// Reservoir sampling returns exactly `min(n, N)` sequences for arbitrary
/// quota/database-size combinations, including n = 0 and n >= N.
#[test]
fn reservoir_sample_size_is_exact() {
    run_cases(128, |rng| {
        let count = rng.gen_range(0..40usize);
        let n = rng.gen_range(0..50usize);
        let db = MemoryDb::from_sequences((0..count).map(|i| vec![Symbol((i % M) as u16)]));
        let sample = reservoir_sample(&db, n, rng);
        assert_eq!(sample.len(), n.min(count));
    });
}

/// Chi-square uniformity smoke test: sampling 10 of 20 sequences many
/// times, each sequence's selection count must stay within a generous
/// chi-square bound of the uniform expectation (Algorithm R is exactly
/// uniform; this guards against off-by-one bias in the replacement index).
#[test]
fn reservoir_selection_is_uniform_chi_square() {
    let count = 20usize;
    let quota = 10usize;
    let trials = 4000usize;
    for seed in [3u64, 1031, 777_777] {
        let db = MemoryDb::from_sequences((0..count).map(|i| vec![Symbol(i as u16)]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = vec![0usize; count];
        for _ in 0..trials {
            for seq in reservoir_sample(&db, quota, &mut rng) {
                hits[seq[0].0 as usize] += 1;
            }
        }
        // Each sequence is selected with probability quota/count = 1/2.
        let expected = trials as f64 * quota as f64 / count as f64;
        let chi2: f64 = hits
            .iter()
            .map(|&h| {
                let d = h as f64 - expected;
                d * d / expected
            })
            .sum();
        // 19 degrees of freedom; the 99.9th percentile is ~43.8. A correct
        // sampler exceeds 60 with negligible probability, a biased one
        // blows past it immediately.
        assert!(
            chi2 < 60.0,
            "chi-square {chi2:.1} for seed {seed}: {hits:?}"
        );
    }
}

/// Checkpoint→restore roundtrip: for random workloads, random chunkings,
/// and checkpoints at random points (including before any data and after a
/// mine), the restored engine equals the original — same totals, symbol
/// matches, reservoir, and identical behavior on the remaining stream.
#[test]
fn stream_checkpoint_roundtrip_preserves_state() {
    let dir = std::env::temp_dir();
    let mut case_id = 0u64;
    run_cases(24, |rng| {
        case_id += 1;
        let matrix = random_matrix(rng, M, 0.05);
        let seqs = random_sequences(rng, M, 12, 10, 60);
        let config = MinerConfig {
            min_match: rng.gen_range(0.1..0.4f64),
            delta: 0.01,
            sample_size: rng.gen_range(1..20usize),
            counters_per_scan: 16,
            space: PatternSpace::contiguous(3),
            seed: rng.gen_range(0..1000u64),
            ..MinerConfig::default()
        };
        let path = dir.join(format!(
            "noisemine-prop-ckpt-{}-{case_id}.bin",
            std::process::id()
        ));

        let cut = rng.gen_range(0..=seqs.len());
        let mut original = StreamState::new(matrix.clone(), config).unwrap();
        original.ingest_all(&seqs[..cut]);
        if rng.gen_bool(0.3) && cut > 0 {
            // Sometimes checkpoint a post-mine engine so tracked borders
            // and the drift anchor ride through serialization too.
            let prefix = noisemine::core::matching::MemorySequences(seqs[..cut].to_vec());
            original.mine(&prefix).unwrap();
        }
        original.checkpoint(&path).unwrap();
        let mut restored = StreamState::restore(&path, matrix).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(original.total_seen(), restored.total_seen());
        assert_eq!(original.symbol_match(), restored.symbol_match());
        assert_eq!(original.sample(), restored.sample());
        assert_eq!(
            original.tracked_patterns().collect::<Vec<_>>(),
            restored.tracked_patterns().collect::<Vec<_>>(),
        );
        assert_eq!(original.drift_exceeded(), restored.drift_exceeded());

        // Both engines must stay in lockstep over the remaining stream
        // (reservoir RNG state survived the roundtrip).
        original.ingest_all(&seqs[cut..]);
        restored.ingest_all(&seqs[cut..]);
        assert_eq!(original.sample(), restored.sample());
        assert_eq!(original.symbol_match(), restored.symbol_match());

        let db = noisemine::core::matching::MemorySequences(seqs.clone());
        let a = original.mine(&db).unwrap();
        let b = restored.mine(&db).unwrap();
        assert_eq!(a.patterns(), b.patterns());
    });
}
